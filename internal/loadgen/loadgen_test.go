package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// TestRunInProcessSmoke drives a short mixed-class run against an in-process
// broker and checks the report invariants the harness promises: records flow
// to every class, percentiles are monotone, stage shares sum to ~100%, and
// the JSON report round-trips.
func TestRunInProcessSmoke(t *testing.T) {
	rep, err := Run(context.Background(), Spec{
		Publishers:  2,
		Subscribers: 1,
		Scoped:      1,
		Converting:  1,
		Rate:        2000,
		Duration:    300 * time.Millisecond,
		Payload:     4,
		SampleEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Published == 0 {
		t.Fatal("nothing published")
	}
	if rep.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	for _, class := range []string{ClassPlain, ClassScoped, ClassConverting} {
		cr := rep.Classes[class]
		if cr == nil || cr.Received == 0 {
			t.Fatalf("class %s received nothing: %+v", class, cr)
		}
		if cr.DecodeErrors != 0 {
			t.Fatalf("class %s had %d decode errors", class, cr.DecodeErrors)
		}
		l := cr.Latency
		if !(l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.P999) {
			t.Fatalf("class %s percentiles not monotone: %+v", class, l)
		}
		if l.P50 < l.Min || l.P999 > l.Max {
			t.Fatalf("class %s percentiles out of [min, max]: %+v", class, l)
		}
	}
	if rep.Latency.Count == 0 {
		t.Fatal("overall latency summary empty")
	}
	if rep.RecordsPerSec <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("throughput not computed: %+v", rep)
	}
	// Broker-side counters come from the in-process broker's registry.
	if rep.BrokerPublished == 0 || rep.BrokerDelivered == 0 {
		t.Fatalf("broker counters empty: published=%d delivered=%d",
			rep.BrokerPublished, rep.BrokerDelivered)
	}

	// Stage shares: sampled tracing must capture all five stages and the
	// self-time normalization must sum to 100%.
	if len(rep.Stages) == 0 {
		t.Fatal("no stage share breakdown")
	}
	var sum float64
	seen := map[string]bool{}
	for _, st := range rep.Stages {
		sum += st.SharePct
		seen[st.Name] = true
		if st.SharePct < 0 {
			t.Fatalf("negative stage share: %+v", st)
		}
	}
	if math.Abs(sum-100) > 0.01 {
		t.Fatalf("stage shares sum to %.3f%%, want 100%%", sum)
	}
	for _, want := range []string{"encode", "publish", "route", "deliver"} {
		if !seen[want] {
			t.Fatalf("stage %q missing from breakdown %v", want, rep.Stages)
		}
	}

	// Autopsy: with 1-in-4 sampling some traced record must have landed in
	// the merged histogram, and its trace must assemble from the run's ring.
	a := rep.Autopsy
	if a == nil {
		t.Fatal("no autopsy despite sampled tracing")
	}
	if len(a.TraceID) != 32 || a.TraceID == strings.Repeat("0", 32) {
		t.Fatalf("autopsy trace id %q", a.TraceID)
	}
	if a.LatencyNS <= 0 || a.P99NS <= 0 {
		t.Fatalf("autopsy latencies: %+v", a)
	}
	if a.SpanCount == 0 || len(a.Tree) != a.SpanCount {
		t.Fatalf("autopsy tree: spans=%d tree=%d", a.SpanCount, len(a.Tree))
	}
	names := map[string]bool{}
	for _, sp := range a.Tree {
		names[sp.Name] = true
	}
	for _, want := range []string{"pub.publish", "broker.route"} {
		if !names[want] {
			t.Fatalf("autopsy tree missing %q: %+v", want, a.Tree)
		}
	}
	var asum float64
	for _, st := range a.Stages {
		asum += st.SharePct
	}
	if math.Abs(asum-100) > 0.01 {
		t.Fatalf("autopsy stage shares sum to %.3f%%, want 100%%", asum)
	}

	// JSON round-trip: the schema tag and key metrics survive.
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.Published != rep.Published ||
		back.Latency.P99 != rep.Latency.P99 {
		t.Fatalf("JSON round-trip mismatch: %+v vs %+v", back, rep)
	}

	// Render paths all succeed and mention the latency table.
	for _, format := range []string{"", "table", "markdown", "md", "json"} {
		out, err := rep.Render(format)
		if err != nil {
			t.Fatalf("Render(%q): %v", format, err)
		}
		if !strings.Contains(out, "p99") {
			t.Fatalf("Render(%q) output missing percentiles:\n%s", format, out)
		}
	}
	if _, err := rep.Render("bogus"); err == nil {
		t.Fatal("Render must reject unknown formats")
	}
	table, _ := rep.Render("table")
	if !strings.Contains(table, "slowest-request autopsy") || !strings.Contains(table, a.TraceID) {
		t.Fatalf("table render missing autopsy:\n%s", table)
	}
	if back.Autopsy == nil || back.Autopsy.TraceID != a.TraceID {
		t.Fatalf("autopsy lost in JSON round-trip: %+v", back.Autopsy)
	}
}

// TestRunChaosProfile exercises the faultnet integration: a lossy/laggy
// profile on every connection with auto-reconnect must still complete the
// run and deliver records.
func TestRunChaosProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	rep, err := Run(context.Background(), Spec{
		Duration:  250 * time.Millisecond,
		Rate:      500,
		Chaos:     "latency",
		ChaosSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Published == 0 || rep.Delivered == 0 {
		t.Fatalf("chaos run moved no records: published=%d delivered=%d",
			rep.Published, rep.Delivered)
	}
}

func TestChaosProfileResolution(t *testing.T) {
	for _, name := range ChaosProfiles() {
		if _, _, err := chaosProfile(name); err != nil {
			t.Errorf("chaosProfile(%q): %v", name, err)
		}
	}
	if _, subOnly, err := chaosProfile("slowsub"); err != nil || !subOnly {
		t.Errorf("slowsub must be subscriber-only (subOnly=%v, err=%v)", subOnly, err)
	}
	if _, _, err := chaosProfile("nope"); err == nil {
		t.Error("unknown chaos profile must error")
	}
	if _, err := Run(context.Background(), Spec{Chaos: "nope"}); err == nil {
		t.Error("Run must reject unknown chaos profiles before dialing anything")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := Spec{}.withDefaults()
	if s.Publishers != 1 || s.Subscribers != 1 || s.Duration != time.Second ||
		s.Payload != 8 || s.QueueDepth != 1024 || s.SampleEvery != 32 ||
		s.Stream != "load" || s.ChaosSeed != 1 {
		t.Fatalf("zero-spec defaults wrong: %+v", s)
	}
	// Requesting only scoped subscribers must not add a default plain one.
	s = Spec{Scoped: 2}.withDefaults()
	if s.Subscribers != 0 || s.Scoped != 2 {
		t.Fatalf("scoped-only spec gained plain subscribers: %+v", s)
	}
	// Negative SampleEvery disables tracing rather than being defaulted.
	s = Spec{SampleEvery: -1}.withDefaults()
	if s.SampleEvery != -1 {
		t.Fatalf("negative SampleEvery must survive defaults: %+v", s)
	}
}

// TestRunContextCancel: cancelling the context ends the run early and still
// returns a report covering what ran.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep, err := Run(ctx, Spec{Duration: 30 * time.Second, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if rep.Published == 0 {
		t.Fatal("cancelled run should still report the records it published")
	}
}
