package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// naiveQuantile is the sort-based reference: the ceil(q*n)-th smallest
// sample (nearest-rank definition, matching Hist.Quantile).
func naiveQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// sampleSets generates assorted latency-shaped distributions: uniform,
// exponential-ish tails, constant, tiny, and adversarial bucket-boundary
// values.
func sampleSets(rng *rand.Rand) [][]int64 {
	uniform := make([]int64, 5000)
	for i := range uniform {
		uniform[i] = rng.Int63n(50_000_000) // 0..50ms
	}
	tail := make([]int64, 5000)
	for i := range tail {
		// Exponential-ish: mostly microseconds, occasional huge outliers.
		tail[i] = int64(1000 * math.Exp(rng.Float64()*12))
	}
	constant := []int64{12345, 12345, 12345, 12345}
	tiny := []int64{0, 1, 2, 3, 63, 64, 65, 127, 128, 129}
	boundaries := make([]int64, 0, 200)
	for exp := uint(6); exp < 40; exp++ {
		boundaries = append(boundaries, int64(1)<<exp, (int64(1)<<exp)-1, (int64(1)<<exp)+1)
	}
	single := []int64{777}
	return [][]int64{uniform, tail, constant, tiny, boundaries, single}
}

var quantiles = []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1}

// TestHistQuantileProperties is the satellite property test: for random and
// adversarial inputs, percentiles must be monotone (p50 <= p95 <= p99 <=
// p999), bounded by min/max, stable under sample reordering, and within the
// histogram's documented relative error of a naive sort-based reference.
func TestHistQuantileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for si, samples := range sampleSets(rng) {
		var h Hist
		for _, v := range samples {
			h.Record(v)
		}
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		if h.Count() != uint64(len(samples)) {
			t.Fatalf("set %d: count = %d, want %d", si, h.Count(), len(samples))
		}
		if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
			t.Fatalf("set %d: min/max = %d/%d, want %d/%d",
				si, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
		}

		// Monotone in q, and bounded by [min, max].
		prev := int64(math.MinInt64)
		for _, q := range quantiles {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("set %d: quantile(%v) = %d < previous %d (not monotone)", si, q, v, prev)
			}
			if v < h.Min() || v > h.Max() {
				t.Fatalf("set %d: quantile(%v) = %d outside [%d, %d]", si, q, v, h.Min(), h.Max())
			}
			prev = v
		}
		p50, p95, p99, p999 := h.Quantile(.5), h.Quantile(.95), h.Quantile(.99), h.Quantile(.999)
		if !(p50 <= p95 && p95 <= p99 && p99 <= p999) {
			t.Fatalf("set %d: p50=%d p95=%d p99=%d p999=%d not monotone", si, p50, p95, p99, p999)
		}

		// Cross-check against the sort-based reference: the histogram reports
		// the bucket upper bound, so it may overshoot by at most one bucket
		// width (1/64 relative) and never undershoots below the reference's
		// bucket.
		for _, q := range quantiles {
			got, want := h.Quantile(q), naiveQuantile(sorted, q)
			hi := want + want/32 + 1
			if got < want-want/32-1 || got > hi {
				t.Fatalf("set %d: quantile(%v) = %d, naive reference %d (allowed up to %d)",
					si, q, got, want, hi)
			}
		}

		// Stability under reordering: shuffled input yields identical output.
		shuffled := append([]int64(nil), samples...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var h2 Hist
		for _, v := range shuffled {
			h2.Record(v)
		}
		for _, q := range quantiles {
			if h.Quantile(q) != h2.Quantile(q) {
				t.Fatalf("set %d: quantile(%v) differs after reorder: %d vs %d",
					si, q, h.Quantile(q), h2.Quantile(q))
			}
		}
		if h.Mean() != h2.Mean() || h.Min() != h2.Min() || h.Max() != h2.Max() {
			t.Fatalf("set %d: summary stats differ after reorder", si)
		}
	}
}

// TestHistMergeEquivalence: merging arbitrary partitions of the samples is
// identical to recording them all into one histogram — the property that
// makes per-subscriber histograms aggregate exactly.
func TestHistMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := make([]int64, 3000)
	for i := range samples {
		samples[i] = rng.Int63n(10_000_000)
	}
	var whole Hist
	for _, v := range samples {
		whole.Record(v)
	}
	// Random 4-way partition, merged in a scrambled order.
	parts := make([]Hist, 4)
	for _, v := range samples {
		parts[rng.Intn(4)].Record(v)
	}
	var merged Hist
	for _, i := range rng.Perm(4) {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() ||
		merged.Max() != whole.Max() || merged.Mean() != whole.Mean() {
		t.Fatalf("merged summary differs: %+v vs %+v", merged, whole)
	}
	for _, q := range quantiles {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("quantile(%v) differs after merge: %d vs %d",
				q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging an empty histogram is a no-op.
	var empty Hist
	before := whole.Quantile(0.99)
	whole.Merge(&empty)
	if whole.Quantile(0.99) != before || whole.Count() != uint64(len(samples)) {
		t.Fatal("merging an empty histogram changed the target")
	}
}

func TestHistEdgeCases(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	// Negative samples (clock skew) clamp into bucket 0 but keep exact
	// min/max so the clamping is visible.
	h.Record(-50)
	h.Record(10)
	if h.Min() != -50 || h.Max() != 10 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if q := h.Quantile(0.25); q != -50 {
		t.Fatalf("low quantile must clamp to observed min, got %d", q)
	}
	// NaN and out-of-range q degrade to min/max rather than panicking.
	if h.Quantile(math.NaN()) != h.Min() || h.Quantile(-1) != h.Min() || h.Quantile(2) != h.Max() {
		t.Fatal("degenerate q must clamp to min/max")
	}
}

// TestBucketMappingRoundTrip pins the bucket math: indexes are monotone
// non-decreasing in v, upper bounds invert the mapping, and the relative
// bucket width stays within 1/64.
func TestBucketMappingRoundTrip(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 129, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
		if idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(%d) = %d < %d", idx, up, v)
		}
		if bucketIdx(up) != idx {
			t.Fatalf("bucketUpper(%d) = %d maps to bucket %d", idx, up, bucketIdx(up))
		}
		if v >= 64 && float64(up-v) > float64(v)/64+1 {
			t.Fatalf("bucket width at %d too wide: upper %d", v, up)
		}
	}
}

func TestHistExemplars(t *testing.T) {
	tidOf := func(b byte) (tid [16]byte) {
		tid[15] = b
		return
	}
	var h Hist
	h.Record(10)
	h.RecordExemplar(100, tidOf(1), 1000)
	h.RecordExemplar(5000, tidOf(2), 2000)
	h.RecordExemplar(120, tidOf(3), 3000)  // same octave as 100: overwrites
	h.RecordExemplar(40, [16]byte{}, 4000) // untraced: counted, no exemplar
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (exemplar recording must still count)", h.Count())
	}

	// Nearest at-or-above wins.
	v, tid, ts, ok := h.ExemplarNear(110)
	if !ok || v != 120 || tid != tidOf(3) || ts != 3000 {
		t.Fatalf("ExemplarNear(110) = %d %v %d %v", v, tid, ts, ok)
	}
	// Above every exemplar: fall back to the largest.
	if v, tid, _, ok = h.ExemplarNear(1 << 40); !ok || v != 5000 || tid != tidOf(2) {
		t.Fatalf("ExemplarNear(huge) = %d %v %v", v, tid, ok)
	}
	// Below every exemplar: smallest at-or-above.
	if v, _, _, ok = h.ExemplarNear(0); !ok || v != 120 {
		t.Fatalf("ExemplarNear(0) = %d %v", v, ok)
	}

	// No traced samples at all.
	var empty Hist
	empty.Record(7)
	if _, _, _, ok := empty.ExemplarNear(7); ok {
		t.Fatal("exemplar from untraced histogram")
	}

	// Merge keeps the worse exemplar per octave.
	var a, b Hist
	a.RecordExemplar(100, tidOf(1), 1)
	b.RecordExemplar(110, tidOf(2), 2) // same octave, larger value
	b.RecordExemplar(9000, tidOf(4), 3)
	a.Merge(&b)
	if v, tid, _, ok := a.ExemplarNear(100); !ok || v != 110 || tid != tidOf(2) {
		t.Fatalf("merged octave exemplar = %d %v %v", v, tid, ok)
	}
	if v, tid, _, ok := a.ExemplarNear(8000); !ok || v != 9000 || tid != tidOf(4) {
		t.Fatalf("merged high exemplar = %d %v %v", v, tid, ok)
	}
}
