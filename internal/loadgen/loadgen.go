// Package loadgen is the repo's open-loop load generator: it drives N
// concurrent publishers and M subscribers (plain, scoped and converting
// mixes) against an in-process or remote broker at a configured arrival
// rate, carries a publish timestamp inside every record's payload, and
// measures true end-to-end publish→route→convert→deliver latency at the
// subscriber. The paper's claim is quantitative — binary metadata exchange
// beats textual XML by integer factors — and this package is what turns
// that into a defended number: cmd/omload wraps it, scripts/bench.sh gates
// its p99 next to the Table 1/2 ns/op gates, and BENCH_trajectory.json
// accumulates its history across PRs.
//
// Open loop means arrivals are scheduled by wall clock, independent of
// completions: a publisher that falls behind its schedule publishes
// immediately and the lag is reported (Behind / MaxLag) instead of silently
// shrinking the offered load — the difference between measuring the system
// and measuring the generator.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"openmeta/internal/dcg"
	"openmeta/internal/eventbus"
	"openmeta/internal/faultnet"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/retry"
	"openmeta/internal/trace"
)

// Spec configures one load run. The zero value is usable: one publisher,
// one plain subscriber, maximum rate for one second against an in-process
// broker.
type Spec struct {
	// Publishers is the number of concurrent publisher connections
	// (default 1). The aggregate Rate is split evenly across them.
	Publishers int `json:"publishers"`
	// Subscribers is the number of plain full-format subscribers
	// (default 1 when no subscriber class is requested).
	Subscribers int `json:"subscribers"`
	// Scoped is the number of field-scoped subscribers: each subscribes to
	// a slice of the record (seq + timestamp only), so the broker projects
	// every record through a conversion plan before delivery — the paper's
	// §4.4 scoping on the hot path.
	Scoped int `json:"scoped"`
	// Converting is the number of converting subscribers: each receives the
	// full record and converts it locally to a foreign-architecture layout
	// (big-endian Sparc64) through a dcg plan before decoding, the
	// heterogeneous-peer cost.
	Converting int `json:"converting"`
	// Rate is the aggregate open-loop arrival rate in records/sec across
	// all publishers; 0 publishes as fast as the bus accepts (closed loop).
	Rate float64 `json:"rate"`
	// Duration bounds the publishing phase (default 1s).
	Duration time.Duration `json:"duration_ns"`
	// Payload is the number of 8-byte elements in each record's dynamic
	// array — the wire-size knob (default 8, i.e. ~88-byte records).
	Payload int `json:"payload"`
	// QueueDepth bounds each subscriber's broker-side frame queue
	// (default 1024); overflow is counted as drops, not backpressure.
	QueueDepth int `json:"queue_depth"`
	// Addr is a remote broker address. Empty starts an in-process broker on
	// a loopback listener; remote runs lose broker-side stats and spans.
	Addr string `json:"addr,omitempty"`
	// SampleEvery traces 1-in-N published records for the stage-share
	// breakdown (default 32; 0 keeps the default, negative disables).
	SampleEvery int `json:"sample_every"`
	// Chaos names a faultnet profile injected into every client connection:
	// "" (none), "default", "latency", "resets", or "slowsub" (subscriber
	// connections only). Chaos runs dial with auto-reconnect enabled.
	Chaos string `json:"chaos,omitempty"`
	// ChaosSeed seeds the deterministic fault schedules (default 1).
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// Stream is the stream name published to (default "load").
	Stream string `json:"stream"`
}

// withDefaults returns the spec with zero fields filled in.
func (s Spec) withDefaults() Spec {
	if s.Publishers <= 0 {
		s.Publishers = 1
	}
	if s.Subscribers <= 0 && s.Scoped <= 0 && s.Converting <= 0 {
		s.Subscribers = 1
	}
	if s.Subscribers < 0 {
		s.Subscribers = 0
	}
	if s.Scoped < 0 {
		s.Scoped = 0
	}
	if s.Converting < 0 {
		s.Converting = 0
	}
	if s.Duration <= 0 {
		s.Duration = time.Second
	}
	if s.Payload <= 0 {
		s.Payload = 8
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = 1024
	}
	if s.SampleEvery == 0 {
		s.SampleEvery = 32
	}
	if s.ChaosSeed == 0 {
		s.ChaosSeed = 1
	}
	if s.Stream == "" {
		s.Stream = "load"
	}
	return s
}

// Subscriber class names, as they appear in Report.Classes.
const (
	ClassPlain      = "plain"
	ClassScoped     = "scoped"
	ClassConverting = "converting"
)

// chaosProfile resolves a Spec.Chaos name. subOnly reports profiles that
// apply to subscriber connections only.
func chaosProfile(name string) (p faultnet.Profile, subOnly bool, err error) {
	switch name {
	case "":
		return faultnet.Profile{}, false, nil
	case "default":
		return faultnet.DefaultProfile(), false, nil
	case "latency":
		return faultnet.Profile{PLatency: 0.25, MaxDelay: 2 * time.Millisecond}, false, nil
	case "resets":
		return faultnet.Profile{PLatency: 0.05, PReset: 0.01, MaxDelay: time.Millisecond}, false, nil
	case "slowsub":
		return faultnet.Profile{PLatency: 0.5, MaxDelay: 5 * time.Millisecond}, true, nil
	default:
		return faultnet.Profile{}, false, fmt.Errorf("loadgen: unknown chaos profile %q (have %v)", name, ChaosProfiles())
	}
}

// ChaosProfiles lists the chaos profile names Spec.Chaos accepts.
func ChaosProfiles() []string { return []string{"default", "latency", "resets", "slowsub"} }

// chaosDialer wraps the plain TCP dialer with a per-connection deterministic
// fault schedule derived from seed.
func chaosDialer(profile faultnet.Profile, seed int64) eventbus.DialFunc {
	var n atomic.Int64
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		c, err := d.DialContext(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		sched := faultnet.NewSchedule(faultnet.Generate(seed+n.Add(1), 4096, profile)...).Loop()
		return faultnet.Wrap(c, sched), nil
	}
}

// warmupSeq marks handshake records published before the measured window;
// subscribers acknowledge the first one and never count them.
const warmupSeq = -1

// subscriber is one running subscriber goroutine's state and results.
type subscriber struct {
	class string
	sub   *eventbus.Subscriber
	hist  Hist
	recvd int64
	bytes int64
	warm  chan struct{} // closed on first (warmup) record
	errs  int64

	// converting-class state: per-source-format conversion plans into the
	// foreign-architecture target layout.
	convCtx   *pbio.Context
	convPlans map[pbio.FormatID]*convTarget
}

type convTarget struct {
	format *pbio.Format
	plan   *dcg.Plan
}

// loadFields is the measured record's layout: a sequence number, the
// publish timestamp the subscriber measures against, and a dynamic payload
// array sized by Spec.Payload.
func loadFields() []pbio.FieldSpec {
	return []pbio.FieldSpec{
		{Name: "seq", Kind: pbio.Int, CType: machine.CLongLong},
		{Name: "pubns", Kind: pbio.Int, CType: machine.CLongLong},
		{Name: "pad", Kind: pbio.Uint, CType: machine.CULongLong, Dynamic: true, CountField: "n"},
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
	}
}

// Run executes one load run and reports the measured latency distribution,
// throughput, drop counts and stage-share breakdown. ctx cancels the run
// early (the report covers what ran).
func Run(ctx context.Context, spec Spec) (*Report, error) {
	spec = spec.withDefaults()
	profile, chaosSubOnly, err := chaosProfile(spec.Chaos)
	if err != nil {
		return nil, err
	}

	tracer := trace.NewTracer(1 << 16)
	if spec.SampleEvery > 0 {
		tracer.SetSampling(spec.SampleEvery)
	}

	// Broker: in-process on loopback unless a remote address is given. The
	// in-process broker gets an isolated metrics registry so published /
	// delivered / dropped counts are this run's alone.
	addr := spec.Addr
	var broker *eventbus.Broker
	if addr == "" {
		reg := obsv.New()
		broker, err = eventbus.Listen("127.0.0.1:0",
			eventbus.WithObserver(reg),
			eventbus.WithQueueDepth(spec.QueueDepth),
			eventbus.WithTracer(tracer))
		if err != nil {
			return nil, fmt.Errorf("loadgen: start broker: %w", err)
		}
		defer broker.Close()
		addr = broker.Addr().String()
	}

	clientOpts := func(subSide bool) []eventbus.ClientOption {
		opts := []eventbus.ClientOption{eventbus.WithClientTracer(tracer)}
		if spec.Chaos != "" {
			if !chaosSubOnly || subSide {
				opts = append(opts, eventbus.WithDialFunc(chaosDialer(profile, spec.ChaosSeed)))
			}
			// Chaos severs connections; reconnect keeps the run alive.
			opts = append(opts, eventbus.WithReconnect(retry.Policy{
				MaxAttempts: 10, Initial: 5 * time.Millisecond, Max: 250 * time.Millisecond,
			}))
		}
		return opts
	}

	// --- Subscribers -------------------------------------------------------
	var subs []*subscriber
	addSubs := func(n int, class string) error {
		for i := 0; i < n; i++ {
			sctx, err := pbio.NewContext(machine.Native)
			if err != nil {
				return err
			}
			s, err := eventbus.DialSubscriberContext(ctx, addr, sctx, clientOpts(true)...)
			if err != nil {
				return fmt.Errorf("loadgen: dial %s subscriber: %w", class, err)
			}
			ls := &subscriber{class: class, sub: s, warm: make(chan struct{})}
			switch class {
			case ClassScoped:
				err = s.SubscribeFields(spec.Stream, "seq", "pubns")
			case ClassConverting:
				// The conversion target: the same fields laid out for a
				// big-endian 64-bit peer, so every record pays a real
				// byte-order + layout conversion before decode.
				ls.convCtx, err = pbio.NewContext(machine.Sparc64)
				if err == nil {
					ls.convPlans = make(map[pbio.FormatID]*convTarget)
					err = s.Subscribe(spec.Stream)
				}
			default:
				err = s.Subscribe(spec.Stream)
			}
			if err != nil {
				s.Close()
				return fmt.Errorf("loadgen: subscribe (%s): %w", class, err)
			}
			subs = append(subs, ls)
		}
		return nil
	}
	if err := addSubs(spec.Subscribers, ClassPlain); err != nil {
		return nil, err
	}
	if err := addSubs(spec.Scoped, ClassScoped); err != nil {
		closeSubs(subs)
		return nil, err
	}
	if err := addSubs(spec.Converting, ClassConverting); err != nil {
		closeSubs(subs)
		return nil, err
	}
	defer closeSubs(subs)

	var wg sync.WaitGroup
	for _, s := range subs {
		wg.Add(1)
		go func(s *subscriber) {
			defer wg.Done()
			s.loop(spec.Stream)
		}(s)
	}

	// --- Publishers --------------------------------------------------------
	pubCtx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return nil, err
	}
	format, err := pubCtx.RegisterSpec("LoadRecord", loadFields())
	if err != nil {
		return nil, err
	}
	pubs := make([]*eventbus.Publisher, spec.Publishers)
	for i := range pubs {
		p, err := eventbus.DialPublisherContext(ctx, addr, clientOpts(false)...)
		if err != nil {
			closePubs(pubs)
			return nil, fmt.Errorf("loadgen: dial publisher: %w", err)
		}
		pubs[i] = p
	}
	defer closePubs(pubs)

	pad := make([]uint64, spec.Payload)
	for i := range pad {
		pad[i] = uint64(i) * 0x9e3779b97f4a7c15
	}

	// Warmup: publish marker records until every subscriber has seen one, so
	// the measured window starts with subscriptions live and format metadata
	// delivered — no fixed sleep, no lost head-of-run records.
	if err := warmup(ctx, pubs[0], spec.Stream, format, subs); err != nil {
		return nil, err
	}

	// Measured window: each publisher runs its own open-loop schedule.
	type pubResult struct {
		published int64
		behind    int64
		maxLag    time.Duration
		errs      int64
	}
	results := make([]pubResult, len(pubs))
	deadline := time.Now().Add(spec.Duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	start := time.Now()
	var pwg sync.WaitGroup
	for pi, p := range pubs {
		pwg.Add(1)
		go func(pi int, p *eventbus.Publisher) {
			defer pwg.Done()
			res := &results[pi]
			var interval time.Duration
			if spec.Rate > 0 {
				interval = time.Duration(float64(time.Second) * float64(spec.Publishers) / spec.Rate)
			}
			rec := pbio.Record{"pad": pad}
			for i := int64(0); ; i++ {
				if runCtx.Err() != nil {
					return
				}
				if interval > 0 {
					target := start.Add(time.Duration(i) * interval)
					lag := time.Since(target)
					if lag < 0 {
						select {
						case <-runCtx.Done():
							return
						case <-time.After(-lag):
						}
					} else if lag > 0 && i > 0 {
						// Open loop: behind schedule, publish immediately and
						// account for the backlog instead of shedding load.
						res.behind++
						if lag > res.maxLag {
							res.maxLag = lag
						}
					}
				}
				if time.Now().After(deadline) {
					return
				}
				rec["seq"] = i
				rec["pubns"] = time.Now().UnixNano()
				if err := pubs[pi].PublishRecord(spec.Stream, format, rec); err != nil {
					res.errs++
					if runCtx.Err() != nil || !recoverable(err) {
						return
					}
					continue
				}
				res.published++
			}
		}(pi, p)
	}
	pwg.Wait()
	elapsed := time.Since(start)

	// Drain: receiving stops when counts go quiet (or after a hard cap), so
	// in-flight records land in the histogram without a fixed sleep.
	drain(subs, 2*time.Second)
	closeSubs(subs)
	wg.Wait()

	// --- Aggregate ---------------------------------------------------------
	rep := &Report{
		Schema:  ReportSchema,
		Spec:    spec,
		Elapsed: elapsed,
		Classes: make(map[string]*ClassReport),
	}
	var overall Hist
	for _, s := range subs {
		cr := rep.Classes[s.class]
		if cr == nil {
			cr = &ClassReport{Subscribers: 0}
			rep.Classes[s.class] = cr
		}
		cr.Subscribers++
		cr.Received += s.recvd
		cr.Bytes += s.bytes
		cr.DecodeErrors += s.errs
		cr.hist.Merge(&s.hist)
		overall.Merge(&s.hist)
		rep.Delivered += s.recvd
		rep.DeliveredBytes += s.bytes
	}
	for _, cr := range rep.Classes {
		cr.Latency = summarize(&cr.hist)
	}
	rep.Latency = summarize(&overall)
	for _, r := range results {
		rep.Published += r.published
		rep.Behind += r.behind
		rep.PublishErrors += r.errs
		if r.maxLag > rep.MaxLag {
			rep.MaxLag = r.maxLag
		}
	}
	if sec := elapsed.Seconds(); sec > 0 {
		rep.RecordsPerSec = float64(rep.Delivered) / sec
		rep.BytesPerSec = float64(rep.DeliveredBytes) / sec
	}
	if broker != nil {
		st := broker.Stats()
		rep.Dropped = broker.DroppedEvents()
		rep.BrokerPublished = st.Published
		rep.BrokerDelivered = st.Delivered
	}
	spans := tracer.Snapshot()
	rep.Stages = stageShares(spans)
	rep.Autopsy = buildAutopsy(&overall, spans)
	return rep, nil
}

// recoverable reports whether a publish error is worth continuing past
// (anything but a closed publisher; reconnect already retried underneath).
func recoverable(err error) bool {
	return !errors.Is(err, eventbus.ErrClosed)
}

// warmup publishes marker records until every subscriber has received one.
func warmup(ctx context.Context, p *eventbus.Publisher, stream string, f *pbio.Format, subs []*subscriber) error {
	warmCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	rec := pbio.Record{"seq": int64(warmupSeq), "pubns": int64(0), "pad": []uint64{}}
	pending := make([]*subscriber, len(subs))
	copy(pending, subs)
	for len(pending) > 0 {
		if err := warmCtx.Err(); err != nil {
			return fmt.Errorf("loadgen: warmup: %d of %d subscribers never received a record: %w",
				len(pending), len(subs), err)
		}
		if err := p.PublishRecord(stream, f, rec); err != nil {
			return fmt.Errorf("loadgen: warmup publish: %w", err)
		}
		next := pending[:0]
		for _, s := range pending {
			select {
			case <-s.warm:
			default:
				next = append(next, s)
			}
		}
		pending = next
		if len(pending) > 0 {
			select {
			case <-warmCtx.Done():
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	return nil
}

// drain waits until subscriber receive counts stop moving (two consecutive
// quiet polls) or the limit elapses.
func drain(subs []*subscriber, limit time.Duration) {
	total := func() int64 {
		var n int64
		for _, s := range subs {
			n += atomic.LoadInt64(&s.recvd)
		}
		return n
	}
	deadline := time.Now().Add(limit)
	prev := total()
	quiet := 0
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		cur := total()
		if cur == prev {
			quiet++
			if quiet >= 2 {
				return
			}
		} else {
			quiet = 0
		}
		prev = cur
	}
}

// loop is one subscriber's receive loop: decode, extract the publish
// timestamp, record the end-to-end latency. Converting subscribers first
// push the record through a conversion plan into the foreign layout.
func (s *subscriber) loop(stream string) {
	warmed := false
	for {
		ev, err := s.sub.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			atomic.AddInt64(&s.errs, 1)
			return
		}
		if ev.Stream != stream {
			continue
		}
		now := time.Now().UnixNano()
		data, f := ev.Data, ev.Format
		if s.convPlans != nil {
			ct, err := s.convertTarget(f)
			if err != nil {
				atomic.AddInt64(&s.errs, 1)
				continue
			}
			if data, err = ct.plan.ConvertCtx(ev.Trace, data); err != nil {
				atomic.AddInt64(&s.errs, 1)
				continue
			}
			f = ct.format
		}
		rec, err := f.DecodeCtx(ev.Trace, data)
		if err != nil {
			atomic.AddInt64(&s.errs, 1)
			continue
		}
		seq, _ := rec["seq"].(int64)
		if seq == warmupSeq {
			if !warmed {
				warmed = true
				close(s.warm)
			}
			continue
		}
		pubns, _ := rec["pubns"].(int64)
		if pubns > 0 {
			if ev.Trace.Sampled() {
				// A traced record: remember its latency + TraceID so the
				// report's autopsy can link the p99 to an assembled trace.
				s.hist.RecordExemplar(now-pubns, ev.Trace.Trace(), now)
			} else {
				s.hist.Record(now - pubns)
			}
		}
		s.bytes += int64(len(ev.Data))
		atomic.AddInt64(&s.recvd, 1)
	}
}

// convertTarget memoizes one conversion plan per source format: the same
// fields registered for the Sparc64 profile, compiled into a dcg program.
func (s *subscriber) convertTarget(src *pbio.Format) (*convTarget, error) {
	if ct, ok := s.convPlans[src.ID]; ok {
		return ct, nil
	}
	target, err := s.convCtx.RegisterSpec(src.Name+"_s64", loadFields())
	if err != nil {
		return nil, err
	}
	plan, err := dcg.Compile(src, target)
	if err != nil {
		return nil, err
	}
	ct := &convTarget{format: target, plan: plan}
	s.convPlans[src.ID] = ct
	return ct, nil
}

func closeSubs(subs []*subscriber) {
	for _, s := range subs {
		if s != nil && s.sub != nil {
			_ = s.sub.Close()
		}
	}
}

func closePubs(pubs []*eventbus.Publisher) {
	for _, p := range pubs {
		if p != nil {
			_ = p.Close()
		}
	}
}

// stageNames maps the pipeline stages of the share breakdown to the span
// names that measure them. "publish" is the client-side frame write
// (pub.publish self time, its encode child subtracted); "deliver" is the
// subscriber-side decode.
var stageNames = []struct {
	stage string
	spans []string
}{
	{"encode", []string{"pbio.encode"}},
	{"publish", []string{"pub.publish"}},
	{"route", []string{"broker.route"}},
	{"queue", []string{"broker.queue"}},
	{"convert", []string{"dcg.convert", "dcg.compile"}},
	{"deliver", []string{"pbio.decode"}},
}

// stageShares turns a span snapshot into the normalized stage breakdown.
// Self times (children subtracted) keep nested stages from double-counting,
// so the shares sum to ~100%.
func stageShares(spans []trace.Span) []StageShare {
	if len(spans) == 0 {
		return nil
	}
	self := trace.SelfTimes(spans)
	var total time.Duration
	shares := make([]StageShare, 0, len(stageNames))
	for _, sn := range stageNames {
		var d time.Duration
		for _, name := range sn.spans {
			d += self[name]
		}
		shares = append(shares, StageShare{Name: sn.stage, Total: d})
		total += d
	}
	if total <= 0 {
		return nil
	}
	for i := range shares {
		shares[i].SharePct = 100 * float64(shares[i].Total) / float64(total)
	}
	sort.SliceStable(shares, func(i, j int) bool { return shares[i].Total > shares[j].Total })
	return shares
}
