package gen

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCheckedInGeneratedFileInSync regenerates examples/codegen/flight_gen.go
// from its schema and verifies the checked-in file matches, so generator
// changes cannot silently diverge from the shipped example.
func TestCheckedInGeneratedFileInSync(t *testing.T) {
	root := filepath.Join("..", "..", "examples", "codegen")
	schema, err := os.ReadFile(filepath.Join(root, "flight.xsd"))
	if err != nil {
		t.Fatalf("read schema: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(root, "flight_gen.go"))
	if err != nil {
		t.Fatalf("read generated file: %v", err)
	}
	got, err := GoSource(string(schema), Options{
		Package:      "main",
		SchemaConst:  "FlightSchemaDocument",
		RegisterFunc: "RegisterFlightSchema",
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Error("examples/codegen/flight_gen.go is out of date; regenerate with:\n" +
			"  go run ./cmd/xml2gen -file examples/codegen/flight.xsd -package main " +
			"-const FlightSchemaDocument -register RegisterFlightSchema -out examples/codegen/flight_gen.go")
	}
}
