// Package airline provides the data model of the paper's motivating
// application — an airline operational information system (Figure 1) — and
// deterministic synthetic generators for its information streams.
//
// The real system consumes FAA aircraft movement feeds, NOAA weather
// streams and periodic data-mining results; none of those are publicly
// replayable, so this package substitutes seeded synthetic streams with the
// same message formats (the ASDOff structures of Appendix A, plus weather
// and reservation-mining formats in the same style). DESIGN.md records the
// substitution.
package airline

import (
	"fmt"
	"math/rand"

	"openmeta/internal/pbio"
)

// Schema documents for the scenario's streams, as they would be published
// on the metadata repository. FlightSchema is the paper's Figure 9
// (Structure B) document, verbatim in content.
const (
	// FlightSchema describes ASDOff flight movement events.
	FlightSchema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/~pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>ASDOff</xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`

	// WeatherSchema describes station observations streamed from remote
	// sources.
	WeatherSchema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/~pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>Surface weather observation</xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="WeatherObs">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="tempC" type="xsd:double" />
    <xsd:element name="dewPointC" type="xsd:double" />
    <xsd:element name="windKts" type="xsd:integer" />
    <xsd:element name="windDir" type="xsd:integer" />
    <xsd:element name="gusts" type="xsd:integer" minOccurs="0" maxOccurs="*" />
    <xsd:element name="remarks" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>`

	// MiningSchema describes periodic data-mining results over the
	// corporate reservation store.
	MiningSchema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/~pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>Load-factor trend mined from reservations</xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="RouteStat">
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="loadFactor" type="xsd:double" />
    <xsd:element name="bookings" type="xsd:integer" />
  </xsd:complexType>
  <xsd:complexType name="LoadTrend">
    <xsd:element name="windowStart" type="xsd:unsigned-long" />
    <xsd:element name="windowEnd" type="xsd:unsigned-long" />
    <xsd:element name="routes" type="RouteStat" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`
)

// Stream names used on the event backbone.
const (
	FlightStream  = "faa.asd.departures"
	WeatherStream = "noaa.surface.obs"
	MiningStream  = "corp.mining.loadtrend"
)

// Schemas returns the compiled-in schema documents keyed by the name under
// which a metadata repository would serve them. The map doubles as the
// fault-tolerant fallback source of §3.3.
func Schemas() map[string]string {
	return map[string]string{
		"ASDOffEvent": FlightSchema,
		"WeatherObs":  WeatherSchema,
		"LoadTrend":   MiningSchema,
	}
}

// Flight mirrors Structure B (Figure 7) as a Go type for binding examples.
type Flight struct {
	CntrID string `pbio:"cntrID"`
	Arln   string `pbio:"arln"`
	FltNum int32  `pbio:"fltNum"`
	Equip  string `pbio:"equip"`
	Org    string `pbio:"org"`
	Dest   string `pbio:"dest"`
	Off    [5]uint32
	Eta    []uint32
}

var (
	centers  = []string{"ZTL", "ZJX", "ZME", "ZID", "ZDC", "ZNY", "ZOB"}
	airlines = []string{"DL", "AA", "UA", "WN", "FL", "NW"}
	aircraft = []string{"B757", "B737", "MD88", "A320", "CRJ2", "B767"}
	airports = []string{"ATL", "MCO", "DFW", "ORD", "LGA", "BOS", "IAD", "MIA", "MSP", "DTW"}
	stations = []string{"KATL", "KMCO", "KDFW", "KORD", "KLGA", "KBOS"}
)

// FlightGen deterministically generates ASDOff flight events.
type FlightGen struct {
	rng *rand.Rand
	seq int32
}

// NewFlightGen returns a generator seeded for reproducible streams.
func NewFlightGen(seed int64) *FlightGen {
	return &FlightGen{rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next flight event as a generic record.
func (g *FlightGen) Next() pbio.Record {
	f := g.NextFlight()
	eta := make([]uint64, len(f.Eta))
	for i, v := range f.Eta {
		eta[i] = uint64(v)
	}
	off := make([]uint64, len(f.Off))
	for i, v := range f.Off {
		off[i] = uint64(v)
	}
	return pbio.Record{
		"cntrID": f.CntrID, "arln": f.Arln, "fltNum": int64(f.FltNum),
		"equip": f.Equip, "org": f.Org, "dest": f.Dest,
		"off": off, "eta": eta,
	}
}

// NextFlight returns the next flight event as a typed struct.
func (g *FlightGen) NextFlight() Flight {
	g.seq++
	r := g.rng
	org := airports[r.Intn(len(airports))]
	dest := airports[r.Intn(len(airports))]
	for dest == org {
		dest = airports[r.Intn(len(airports))]
	}
	var off [5]uint32
	base := uint32(r.Intn(86400))
	for i := range off {
		off[i] = base + uint32(i*60)
	}
	eta := make([]uint32, r.Intn(6))
	for i := range eta {
		eta[i] = base + 3600 + uint32(r.Intn(7200))
	}
	return Flight{
		CntrID: centers[r.Intn(len(centers))],
		Arln:   airlines[r.Intn(len(airlines))],
		FltNum: 100 + g.seq%8900,
		Equip:  aircraft[r.Intn(len(aircraft))],
		Org:    org,
		Dest:   dest,
		Off:    off,
		Eta:    eta,
	}
}

// WeatherGen deterministically generates surface observations.
type WeatherGen struct {
	rng *rand.Rand
}

// NewWeatherGen returns a generator seeded for reproducible streams.
func NewWeatherGen(seed int64) *WeatherGen {
	return &WeatherGen{rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next observation as a generic record.
func (g *WeatherGen) Next() pbio.Record {
	r := g.rng
	temp := -10 + r.Float64()*45
	gusts := make([]int64, r.Intn(4))
	wind := int64(r.Intn(40))
	for i := range gusts {
		gusts[i] = wind + int64(5+r.Intn(20))
	}
	return pbio.Record{
		"station":   stations[r.Intn(len(stations))],
		"tempC":     temp,
		"dewPointC": temp - r.Float64()*10,
		"windKts":   wind,
		"windDir":   int64(r.Intn(360)),
		"gusts":     gusts,
		"remarks":   fmt.Sprintf("AO2 SLP%03d", r.Intn(1000)),
	}
}

// MiningGen deterministically generates load-trend mining results.
type MiningGen struct {
	rng    *rand.Rand
	window uint64
}

// NewMiningGen returns a generator seeded for reproducible streams.
func NewMiningGen(seed int64) *MiningGen {
	return &MiningGen{rng: rand.New(rand.NewSource(seed)), window: 946684800}
}

// Next returns the next mining result as a generic record. The nested
// routes array exercises composed formats end to end.
func (g *MiningGen) Next() pbio.Record {
	r := g.rng
	start := g.window
	g.window += 3600
	routes := make([]pbio.Record, 1+r.Intn(8))
	for i := range routes {
		org := airports[r.Intn(len(airports))]
		dest := airports[r.Intn(len(airports))]
		routes[i] = pbio.Record{
			"org": org, "dest": dest,
			"loadFactor": 0.4 + r.Float64()*0.6,
			"bookings":   int64(50 + r.Intn(250)),
		}
	}
	return pbio.Record{
		"windowStart": start,
		"windowEnd":   g.window,
		"routes":      routes,
	}
}
