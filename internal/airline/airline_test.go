package airline

import (
	"reflect"
	"testing"

	"openmeta/internal/core"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

func TestSchemasAllRegister(t *testing.T) {
	for name, doc := range Schemas() {
		t.Run(name, func(t *testing.T) {
			ctx, err := pbio.NewContext(machine.Native)
			if err != nil {
				t.Fatal(err)
			}
			set, err := core.RegisterDocument(ctx, []byte(doc))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := set.Lookup(name); !ok {
				t.Errorf("schema %q does not define a type of that name", name)
			}
		})
	}
}

func TestFlightGenDeterministic(t *testing.T) {
	a, b := NewFlightGen(7), NewFlightGen(7)
	for i := 0; i < 50; i++ {
		if !reflect.DeepEqual(a.Next(), b.Next()) {
			t.Fatalf("generation %d diverged", i)
		}
	}
	c := NewFlightGen(8)
	same := true
	a2 := NewFlightGen(7)
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(a2.Next(), c.Next()) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestFlightEventsEncode(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.Sparc)
	set, err := core.RegisterDocument(ctx, []byte(FlightSchema))
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	gen := NewFlightGen(42)
	for i := 0; i < 100; i++ {
		rec := gen.Next()
		data, err := f.Encode(rec)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		out, err := f.Decode(data)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if out["org"] == out["dest"] {
			t.Errorf("event %d: origin == destination (%v)", i, out["org"])
		}
		if out["fltNum"].(int64) < 100 {
			t.Errorf("event %d: flight number %v", i, out["fltNum"])
		}
	}
}

func TestFlightStructBinding(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86_64)
	set, err := core.RegisterDocument(ctx, []byte(FlightSchema))
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	b, err := f.Bind(Flight{})
	if err != nil {
		t.Fatal(err)
	}
	gen := NewFlightGen(1)
	in := gen.NextFlight()
	data, err := b.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Flight
	if err := b.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestWeatherEventsEncode(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86)
	set, err := core.RegisterDocument(ctx, []byte(WeatherSchema))
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	gen := NewWeatherGen(3)
	for i := 0; i < 100; i++ {
		rec := gen.Next()
		data, err := f.Encode(rec)
		if err != nil {
			t.Fatalf("obs %d: %v", i, err)
		}
		out, err := f.Decode(data)
		if err != nil {
			t.Fatalf("obs %d: %v", i, err)
		}
		if out["tempC"].(float64) < out["dewPointC"].(float64) {
			t.Errorf("obs %d: dew point above temperature", i)
		}
	}
}

func TestMiningEventsEncode(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.Sparc64)
	set, err := core.RegisterDocument(ctx, []byte(MiningSchema))
	if err != nil {
		t.Fatal(err)
	}
	f, ok := set.Lookup("LoadTrend")
	if !ok {
		t.Fatal("LoadTrend not registered")
	}
	gen := NewMiningGen(9)
	var prevEnd uint64
	for i := 0; i < 50; i++ {
		rec := gen.Next()
		data, err := f.Encode(rec)
		if err != nil {
			t.Fatalf("trend %d: %v", i, err)
		}
		out, err := f.Decode(data)
		if err != nil {
			t.Fatalf("trend %d: %v", i, err)
		}
		start := out["windowStart"].(uint64)
		end := out["windowEnd"].(uint64)
		if end <= start {
			t.Errorf("trend %d: empty window", i)
		}
		if start < prevEnd {
			t.Errorf("trend %d: windows overlap", i)
		}
		prevEnd = end
		routes := out["routes"].([]pbio.Record)
		if len(routes) == 0 {
			t.Errorf("trend %d: no routes", i)
		}
		for _, r := range routes {
			lf := r["loadFactor"].(float64)
			if lf < 0.4 || lf > 1.0 {
				t.Errorf("trend %d: load factor %v", i, lf)
			}
		}
	}
}
