package machine

import (
	"errors"
	"fmt"
)

// Member describes one member of a record for layout purposes: a scalar, a
// static array of scalars, or a nested previously-laid-out record. Exactly
// one of Type or Record must be set.
type Member struct {
	// Name is the member name; used only for diagnostics.
	Name string
	// Type is the scalar element type (zero when Record is set).
	Type CType
	// Record is the layout of a nested record member (nil for scalars).
	Record *Layout
	// Count is the static array element count; 0 and 1 both mean a single
	// element. Dynamic arrays and strings are pointers at the language level
	// and must be declared as Type: CPointer with Count 0.
	Count int
}

// Field is the result of laying out one Member: the resolved size, alignment
// and byte offset within the record. This is the information the paper's
// Field structure carries into PBIO registration.
type Field struct {
	Name string
	// Type is the scalar element type, or 0 for a nested record.
	Type CType
	// Record is the nested record layout, or nil for scalars.
	Record *Layout
	// ElemSize is the size of one element (sizeof on the target arch).
	ElemSize int
	// Count is the static element count (>= 1).
	Count int
	// Offset is the byte offset of the field within the record, including
	// any alignment padding the compiler would insert.
	Offset int
	// Align is the alignment requirement of the field.
	Align int
}

// Size returns the total size of the field: ElemSize * Count.
func (f *Field) Size() int { return f.ElemSize * f.Count }

// Layout is the computed in-memory layout of a record on one architecture:
// field offsets including padding, overall alignment and padded total size.
// A Layout is immutable after construction.
type Layout struct {
	// Arch is the architecture the layout was computed for.
	Arch *Arch
	// Fields are the laid-out fields in declaration order.
	Fields []Field
	// Size is the padded total size (what C sizeof would report).
	Size int
	// Align is the overall alignment of the record.
	Align int
}

// ErrEmptyRecord is returned when laying out a record with no members; C
// forbids empty structs and an empty message format is always a caller bug.
var ErrEmptyRecord = errors.New("machine: record has no members")

// LayOut computes the C layout of a record with the given members on
// architecture a, applying the conventional algorithm: each field is placed
// at the next offset aligned to the field's alignment; the record's own
// alignment is the maximum field alignment; the total size is padded up to a
// multiple of the record alignment (so arrays of the record tile correctly).
func LayOut(a *Arch, members []Member) (*Layout, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, ErrEmptyRecord
	}
	l := &Layout{
		Arch:   a,
		Fields: make([]Field, 0, len(members)),
		Align:  1,
	}
	offset := 0
	for i, m := range members {
		f, err := resolveMember(a, i, m)
		if err != nil {
			return nil, err
		}
		offset = alignUp(offset, f.Align)
		f.Offset = offset
		offset += f.Size()
		if f.Align > l.Align {
			l.Align = f.Align
		}
		l.Fields = append(l.Fields, f)
	}
	l.Size = alignUp(offset, l.Align)
	return l, nil
}

func resolveMember(a *Arch, idx int, m Member) (Field, error) {
	count := m.Count
	if count < 0 {
		return Field{}, fmt.Errorf("machine: member %d (%q): negative count %d", idx, m.Name, m.Count)
	}
	if count == 0 {
		count = 1
	}
	switch {
	case m.Record != nil && m.Type != 0:
		return Field{}, fmt.Errorf("machine: member %d (%q): both Type and Record set", idx, m.Name)
	case m.Record != nil:
		if m.Record.Arch != a {
			return Field{}, fmt.Errorf("machine: member %d (%q): nested layout computed for %q, want %q",
				idx, m.Name, m.Record.Arch.Name, a.Name)
		}
		return Field{
			Name:     m.Name,
			Record:   m.Record,
			ElemSize: m.Record.Size,
			Count:    count,
			Align:    m.Record.Align,
		}, nil
	case m.Type != 0:
		size := a.SizeOf(m.Type)
		if size == 0 {
			return Field{}, fmt.Errorf("machine: member %d (%q): unknown C type %d", idx, m.Name, int(m.Type))
		}
		return Field{
			Name:     m.Name,
			Type:     m.Type,
			ElemSize: size,
			Count:    count,
			Align:    a.AlignOf(m.Type),
		}, nil
	default:
		return Field{}, fmt.Errorf("machine: member %d (%q): neither Type nor Record set", idx, m.Name)
	}
}

// FieldByName returns the laid-out field with the given name.
func (l *Layout) FieldByName(name string) (*Field, bool) {
	for i := range l.Fields {
		if l.Fields[i].Name == name {
			return &l.Fields[i], true
		}
	}
	return nil, false
}

func alignUp(n, align int) int {
	if align <= 1 {
		return n
	}
	rem := n % align
	if rem == 0 {
		return n
	}
	return n + align - rem
}
