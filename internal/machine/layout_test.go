package machine

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// asdOffMembers is Structure A from the paper's Appendix A (Figure 4).
func asdOffMembers() []Member {
	return []Member{
		{Name: "cntrId", Type: CPointer},
		{Name: "arln", Type: CPointer},
		{Name: "fltNum", Type: CInt},
		{Name: "equip", Type: CPointer},
		{Name: "org", Type: CPointer},
		{Name: "dest", Type: CPointer},
		{Name: "off", Type: CULong},
		{Name: "eta", Type: CULong},
	}
}

func TestLayoutStructureA32(t *testing.T) {
	// On a 32-bit ILP32 arch everything is 4 bytes: no padding at all.
	l, err := LayOut(X86, asdOffMembers())
	if err != nil {
		t.Fatal(err)
	}
	wantOffsets := []int{0, 4, 8, 12, 16, 20, 24, 28}
	for i, f := range l.Fields {
		if f.Offset != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOffsets[i])
		}
	}
	if l.Size != 32 {
		t.Errorf("size = %d, want 32", l.Size)
	}
	if l.Align != 4 {
		t.Errorf("align = %d, want 4", l.Align)
	}
}

func TestLayoutStructureA64(t *testing.T) {
	// On LP64: pointers 8, int 4, unsigned long 8. fltNum at 16, then 4 bytes
	// of padding before the next pointer.
	l, err := LayOut(X86_64, asdOffMembers())
	if err != nil {
		t.Fatal(err)
	}
	wantOffsets := []int{0, 8, 16, 24, 32, 40, 48, 56}
	for i, f := range l.Fields {
		if f.Offset != wantOffsets[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOffsets[i])
		}
	}
	if l.Size != 64 {
		t.Errorf("size = %d, want 64", l.Size)
	}
}

func TestLayoutPaddingBeforeDouble(t *testing.T) {
	// struct { char c; double d; } — the classic padding case.
	l, err := LayOut(X86_64, []Member{
		{Name: "c", Type: CChar},
		{Name: "d", Type: CDouble},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Fields[1].Offset != 8 {
		t.Errorf("d offset = %d, want 8", l.Fields[1].Offset)
	}
	if l.Size != 16 {
		t.Errorf("size = %d, want 16", l.Size)
	}
	// On i386 the double aligns to 4.
	l32, err := LayOut(X86, []Member{
		{Name: "c", Type: CChar},
		{Name: "d", Type: CDouble},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l32.Fields[1].Offset != 4 {
		t.Errorf("i386 d offset = %d, want 4", l32.Fields[1].Offset)
	}
	if l32.Size != 12 {
		t.Errorf("i386 size = %d, want 12", l32.Size)
	}
}

func TestLayoutTailPadding(t *testing.T) {
	// struct { double d; char c; } must pad the tail so arrays tile.
	l, err := LayOut(X86_64, []Member{
		{Name: "d", Type: CDouble},
		{Name: "c", Type: CChar},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Size != 16 {
		t.Errorf("size = %d, want 16", l.Size)
	}
}

func TestLayoutStaticArray(t *testing.T) {
	// unsigned long off[5] from Structure B.
	l, err := LayOut(X86, []Member{
		{Name: "off", Type: CULong, Count: 5},
		{Name: "tail", Type: CChar},
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Fields[0].Size() != 20 {
		t.Errorf("array field size = %d, want 20", l.Fields[0].Size())
	}
	if l.Fields[1].Offset != 20 {
		t.Errorf("tail offset = %d, want 20", l.Fields[1].Offset)
	}
}

func TestLayoutNestedRecord(t *testing.T) {
	inner, err := LayOut(X86_64, []Member{
		{Name: "x", Type: CInt},
		{Name: "y", Type: CDouble},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inner.Size != 16 {
		t.Fatalf("inner size = %d, want 16", inner.Size)
	}
	outer, err := LayOut(X86_64, []Member{
		{Name: "tag", Type: CChar},
		{Name: "in", Record: inner},
		{Name: "z", Type: CChar},
	})
	if err != nil {
		t.Fatal(err)
	}
	// inner has align 8, so it starts at 8; z at 24; total padded to 32.
	if outer.Fields[1].Offset != 8 {
		t.Errorf("nested offset = %d, want 8", outer.Fields[1].Offset)
	}
	if outer.Fields[2].Offset != 24 {
		t.Errorf("z offset = %d, want 24", outer.Fields[2].Offset)
	}
	if outer.Size != 32 {
		t.Errorf("outer size = %d, want 32", outer.Size)
	}
}

func TestLayoutNestedArchMismatch(t *testing.T) {
	inner, err := LayOut(X86, []Member{{Name: "x", Type: CInt}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = LayOut(X86_64, []Member{{Name: "in", Record: inner}})
	if err == nil {
		t.Fatal("nested layout from a different arch should be rejected")
	}
}

func TestLayoutErrors(t *testing.T) {
	if _, err := LayOut(X86_64, nil); !errors.Is(err, ErrEmptyRecord) {
		t.Errorf("empty record err = %v, want ErrEmptyRecord", err)
	}
	if _, err := LayOut(X86_64, []Member{{Name: "bad"}}); err == nil {
		t.Error("member with no type: want error")
	}
	if _, err := LayOut(X86_64, []Member{{Name: "bad", Type: CInt, Count: -1}}); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := LayOut(X86_64, []Member{{Name: "bad", Type: CType(99)}}); err == nil {
		t.Error("unknown CType: want error")
	}
	inner, _ := LayOut(X86_64, []Member{{Name: "x", Type: CInt}})
	if _, err := LayOut(X86_64, []Member{{Name: "bad", Type: CInt, Record: inner}}); err == nil {
		t.Error("both Type and Record set: want error")
	}
	bad := &Arch{Name: "bad"}
	if _, err := LayOut(bad, []Member{{Name: "x", Type: CInt}}); err == nil {
		t.Error("invalid arch: want error")
	}
}

func TestFieldByName(t *testing.T) {
	l, err := LayOut(X86_64, asdOffMembers())
	if err != nil {
		t.Fatal(err)
	}
	f, ok := l.FieldByName("fltNum")
	if !ok || f.Type != CInt {
		t.Fatalf("FieldByName(fltNum) = %+v, %v", f, ok)
	}
	if _, ok := l.FieldByName("nope"); ok {
		t.Error("FieldByName(nope) found a field")
	}
}

// Property: every layout respects the invariants a C compiler guarantees.
func TestLayoutInvariantsProperty(t *testing.T) {
	arches := []*Arch{X86, X86_64, Sparc, Sparc64, Legacy16}
	types := []CType{CChar, CUChar, CShort, CUShort, CInt, CUInt, CLong,
		CULong, CLongLong, CULongLong, CFloat, CDouble, CPointer}

	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		arch := arches[rng.Intn(len(arches))]
		n := int(nRaw)%12 + 1
		members := make([]Member, n)
		for i := range members {
			members[i] = Member{
				Name:  "f",
				Type:  types[rng.Intn(len(types))],
				Count: rng.Intn(4), // 0..3
			}
		}
		l, err := LayOut(arch, members)
		if err != nil {
			return false
		}
		prevEnd := 0
		for _, fl := range l.Fields {
			if fl.Offset%fl.Align != 0 {
				return false // misaligned field
			}
			if fl.Offset < prevEnd {
				return false // overlapping fields
			}
			if fl.Offset-prevEnd >= fl.Align {
				return false // more padding than needed
			}
			prevEnd = fl.Offset + fl.Size()
		}
		if l.Size%l.Align != 0 {
			return false // size must be a multiple of alignment
		}
		if l.Size < prevEnd || l.Size-prevEnd >= l.Align {
			return false // wrong tail padding
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAlignUp(t *testing.T) {
	tests := []struct{ n, align, want int }{
		{0, 4, 0}, {1, 4, 4}, {4, 4, 4}, {5, 4, 8},
		{7, 1, 7}, {7, 0, 7}, {9, 8, 16},
	}
	for _, tt := range tests {
		if got := alignUp(tt.n, tt.align); got != tt.want {
			t.Errorf("alignUp(%d, %d) = %d, want %d", tt.n, tt.align, got, tt.want)
		}
	}
}
