package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPutUintUintRoundTrip(t *testing.T) {
	f := func(v uint64, big bool, sizeSel uint8) bool {
		sizes := []int{1, 2, 4, 8}
		size := sizes[int(sizeSel)%4]
		order := LittleEndian
		if big {
			order = BigEndian
		}
		var b [8]byte
		want := v
		if size < 8 {
			want = v & (uint64(1)<<(uint(size)*8) - 1)
		}
		PutUint(b[:], order, size, v)
		return Uint(b[:], order, size) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintKnownValues(t *testing.T) {
	b := []byte{0x12, 0x34, 0x56, 0x78}
	if got := Uint(b, BigEndian, 4); got != 0x12345678 {
		t.Errorf("BE = %#x", got)
	}
	if got := Uint(b, LittleEndian, 4); got != 0x78563412 {
		t.Errorf("LE = %#x", got)
	}
	if got := Uint(b, BigEndian, 2); got != 0x1234 {
		t.Errorf("BE16 = %#x", got)
	}
	if got := Uint(b, LittleEndian, 1); got != 0x12 {
		t.Errorf("8 = %#x", got)
	}
	b8 := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if got := Uint(b8, BigEndian, 8); got != 0x0102030405060708 {
		t.Errorf("BE64 = %#x", got)
	}
	if got := Uint(b8, LittleEndian, 8); got != 0x0807060504030201 {
		t.Errorf("LE64 = %#x", got)
	}
}

func TestPutUintPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PutUint with size 3 should panic")
		}
	}()
	var b [8]byte
	PutUint(b[:], BigEndian, 3, 1)
}

func TestUintPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint with size 5 should panic")
		}
	}()
	var b [8]byte
	Uint(b[:], BigEndian, 5)
}

func TestSignExtend(t *testing.T) {
	tests := []struct {
		v    uint64
		size int
		want int64
	}{
		{0xFF, 1, -1},
		{0x7F, 1, 127},
		{0x80, 1, -128},
		{0xFFFF, 2, -1},
		{0x8000, 2, -32768},
		{0xFFFFFFFF, 4, -1},
		{0x7FFFFFFF, 4, math.MaxInt32},
		{0xFFFFFFFFFFFFFFFF, 8, -1},
		{42, 4, 42},
	}
	for _, tt := range tests {
		if got := SignExtend(tt.v, tt.size); got != tt.want {
			t.Errorf("SignExtend(%#x, %d) = %d, want %d", tt.v, tt.size, got, tt.want)
		}
	}
}

func TestTruncInt(t *testing.T) {
	tests := []struct {
		v    int64
		size int
		want uint64
	}{
		{-1, 1, 0xFF},
		{-1, 2, 0xFFFF},
		{-1, 4, 0xFFFFFFFF},
		{-1, 8, 0xFFFFFFFFFFFFFFFF},
		{300, 1, 44}, // wraps like C
		{42, 4, 42},
	}
	for _, tt := range tests {
		if got := TruncInt(tt.v, tt.size); got != tt.want {
			t.Errorf("TruncInt(%d, %d) = %#x, want %#x", tt.v, tt.size, got, tt.want)
		}
	}
}

func TestSignRoundTripProperty(t *testing.T) {
	f := func(v int64, sizeSel uint8) bool {
		sizes := []int{1, 2, 4, 8}
		size := sizes[int(sizeSel)%4]
		// Clamp v into range for the size, then round-trip.
		tr := TruncInt(v, size)
		got := SignExtend(tr, size)
		want := v
		if size < 8 {
			shift := uint(64 - size*8)
			want = v << shift >> shift
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	values := []float64{0, 1, -1, 3.141592653589793, math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1)}
	for _, order := range []ByteOrder{LittleEndian, BigEndian} {
		for _, v := range values {
			var b [8]byte
			PutFloat(b[:], order, 8, v)
			if got := Float(b[:], order, 8); got != v {
				t.Errorf("double %s round trip: %v != %v", order, got, v)
			}
			PutFloat(b[:], order, 4, v)
			want := float64(float32(v))
			if got := Float(b[:], order, 4); got != want {
				t.Errorf("float %s round trip: %v != %v", order, got, want)
			}
		}
	}
}

func TestFloatNaN(t *testing.T) {
	var b [8]byte
	PutFloat(b[:], BigEndian, 8, math.NaN())
	if !math.IsNaN(Float(b[:], BigEndian, 8)) {
		t.Error("NaN did not round trip")
	}
}

func TestPutFloatPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PutFloat with size 2 should panic")
		}
	}()
	var b [8]byte
	PutFloat(b[:], BigEndian, 2, 1)
}

func TestFloatPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Float with size 1 should panic")
		}
	}()
	var b [8]byte
	Float(b[:], BigEndian, 1)
}
