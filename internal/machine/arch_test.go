package machine

import (
	"errors"
	"testing"
)

func TestPredefinedArchesValidate(t *testing.T) {
	for _, name := range ArchNames() {
		a, err := ArchByName(name)
		if err != nil {
			t.Fatalf("ArchByName(%q): %v", name, err)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("arch %q invalid: %v", name, err)
		}
		if a.Name != name {
			t.Errorf("arch registered under %q has Name %q", name, a.Name)
		}
	}
}

func TestArchByNameUnknown(t *testing.T) {
	_, err := ArchByName("pdp-11")
	if !errors.Is(err, ErrUnknownArch) {
		t.Fatalf("ArchByName(pdp-11) err = %v, want ErrUnknownArch", err)
	}
}

func TestValidateRejectsBadArch(t *testing.T) {
	tests := []struct {
		name string
		mod  func(*Arch)
	}{
		{"zero byte order", func(a *Arch) { a.Order = 0 }},
		{"zero int size", func(a *Arch) { a.IntSize = 0 }},
		{"negative pointer size", func(a *Arch) { a.PointerSize = -1 }},
		{"zero max align", func(a *Arch) { a.MaxAlign = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := *X86_64 // copy
			tt.mod(&a)
			if err := a.Validate(); err == nil {
				t.Errorf("Validate() = nil, want error")
			}
		})
	}
}

func TestValidateNil(t *testing.T) {
	var a *Arch
	if err := a.Validate(); err == nil {
		t.Fatal("Validate on nil arch: want error")
	}
}

func TestAlign(t *testing.T) {
	tests := []struct {
		arch *Arch
		size int
		want int
	}{
		{X86_64, 1, 1},
		{X86_64, 2, 2},
		{X86_64, 4, 4},
		{X86_64, 8, 8},
		{X86_64, 16, 8},  // capped at MaxAlign
		{X86, 8, 4},      // i386 ABI caps double alignment at 4
		{Legacy16, 8, 2}, // 16-bit profile caps everything at 2
		{X86_64, 0, 1},
		{X86_64, -3, 1},
		{X86_64, 6, 4}, // non-power-of-two size aligns to largest pow2 below
	}
	for _, tt := range tests {
		if got := tt.arch.Align(tt.size); got != tt.want {
			t.Errorf("%s.Align(%d) = %d, want %d", tt.arch.Name, tt.size, got, tt.want)
		}
	}
}

func TestSizeOf(t *testing.T) {
	tests := []struct {
		arch *Arch
		typ  CType
		want int
	}{
		{X86, CLong, 4},
		{X86_64, CLong, 8},
		{X86, CPointer, 4},
		{X86_64, CPointer, 8},
		{Legacy16, CInt, 2},
		{Sparc, CULong, 4},
		{Sparc64, CULong, 8},
		{X86_64, CDouble, 8},
		{X86_64, CFloat, 4},
		{X86_64, CChar, 1},
		{X86_64, CUChar, 1},
		{X86_64, CShort, 2},
		{X86_64, CUShort, 2},
		{X86_64, CLongLong, 8},
		{X86_64, CULongLong, 8},
		{X86_64, CUInt, 4},
	}
	for _, tt := range tests {
		if got := tt.arch.SizeOf(tt.typ); got != tt.want {
			t.Errorf("%s.SizeOf(%s) = %d, want %d", tt.arch.Name, tt.typ, got, tt.want)
		}
	}
	if got := X86_64.SizeOf(CType(99)); got != 0 {
		t.Errorf("SizeOf(invalid) = %d, want 0", got)
	}
}

func TestCTypePredicates(t *testing.T) {
	if !CInt.Signed() || CUInt.Signed() {
		t.Error("Signed() wrong for CInt/CUInt")
	}
	if !CULong.Integer() || CFloat.Integer() {
		t.Error("Integer() wrong for CULong/CFloat")
	}
	if !CDouble.Float() || CLong.Float() {
		t.Error("Float() wrong for CDouble/CLong")
	}
	if CPointer.Integer() || CPointer.Float() || CPointer.Signed() {
		t.Error("CPointer should be neither integer nor float nor signed")
	}
}

func TestCTypeString(t *testing.T) {
	if CULong.String() != "unsigned long" {
		t.Errorf("CULong.String() = %q", CULong.String())
	}
	if s := CType(99).String(); s != "CType(99)" {
		t.Errorf("invalid CType String() = %q", s)
	}
}

func TestByteOrderString(t *testing.T) {
	if LittleEndian.String() != "little-endian" || BigEndian.String() != "big-endian" {
		t.Error("ByteOrder.String() wrong for valid orders")
	}
	if s := ByteOrder(7).String(); s != "ByteOrder(7)" {
		t.Errorf("invalid ByteOrder String() = %q", s)
	}
}
