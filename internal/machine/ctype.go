package machine

import "fmt"

// CType identifies a C primitive type whose size and alignment depend on the
// architecture. xml2wire maps XML Schema primitive types onto these, exactly
// as the paper maps xsd types onto the native types a C program would use.
type CType int

// C primitive types.
const (
	CChar CType = iota + 1
	CUChar
	CShort
	CUShort
	CInt
	CUInt
	CLong
	CULong
	CLongLong
	CULongLong
	CFloat
	CDouble
	CPointer // char* and other data pointers (strings, dynamic arrays)
)

var ctypeNames = map[CType]string{
	CChar:      "char",
	CUChar:     "unsigned char",
	CShort:     "short",
	CUShort:    "unsigned short",
	CInt:       "int",
	CUInt:      "unsigned int",
	CLong:      "long",
	CULong:     "unsigned long",
	CLongLong:  "long long",
	CULongLong: "unsigned long long",
	CFloat:     "float",
	CDouble:    "double",
	CPointer:   "pointer",
}

// String returns the C spelling of the type.
func (t CType) String() string {
	if s, ok := ctypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("CType(%d)", int(t))
}

// Signed reports whether the type is a signed integer type.
func (t CType) Signed() bool {
	switch t {
	case CChar, CShort, CInt, CLong, CLongLong:
		return true
	default:
		return false
	}
}

// Integer reports whether the type is an integer type (signed or unsigned).
func (t CType) Integer() bool {
	switch t {
	case CChar, CUChar, CShort, CUShort, CInt, CUInt, CLong, CULong, CLongLong, CULongLong:
		return true
	default:
		return false
	}
}

// Float reports whether the type is a floating-point type.
func (t CType) Float() bool { return t == CFloat || t == CDouble }

// SizeOf returns sizeof(t) on architecture a, mirroring the paper's use of
// the C sizeof operator during Field population.
func (a *Arch) SizeOf(t CType) int {
	switch t {
	case CChar, CUChar:
		return a.CharSize
	case CShort, CUShort:
		return a.ShortSize
	case CInt, CUInt:
		return a.IntSize
	case CLong, CULong:
		return a.LongSize
	case CLongLong, CULongLong:
		return a.LongLongSize
	case CFloat:
		return a.FloatSize
	case CDouble:
		return a.DoubleSize
	case CPointer:
		return a.PointerSize
	default:
		return 0
	}
}

// AlignOf returns the ABI alignment of t on architecture a.
func (a *Arch) AlignOf(t CType) int { return a.Align(a.SizeOf(t)) }
