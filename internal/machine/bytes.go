package machine

import "math"

// PutUint stores the low `size` bytes of v into b[:size] in the given byte
// order. size must be 1, 2, 4 or 8 and len(b) >= size; violations panic, as
// with encoding/binary, because they are always programming errors on a hot
// path that callers have already validated.
func PutUint(b []byte, order ByteOrder, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		if order == BigEndian {
			b[0], b[1] = byte(v>>8), byte(v)
		} else {
			b[0], b[1] = byte(v), byte(v>>8)
		}
	case 4:
		if order == BigEndian {
			b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		} else {
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		}
	case 8:
		if order == BigEndian {
			b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
			b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		} else {
			b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
		}
	default:
		panic("machine: PutUint size must be 1, 2, 4 or 8")
	}
}

// Uint loads a `size`-byte unsigned integer from b[:size] in the given byte
// order. size must be 1, 2, 4 or 8.
func Uint(b []byte, order ByteOrder, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		if order == BigEndian {
			return uint64(b[0])<<8 | uint64(b[1])
		}
		return uint64(b[1])<<8 | uint64(b[0])
	case 4:
		if order == BigEndian {
			return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
		}
		return uint64(b[3])<<24 | uint64(b[2])<<16 | uint64(b[1])<<8 | uint64(b[0])
	case 8:
		if order == BigEndian {
			return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
				uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
		}
		return uint64(b[7])<<56 | uint64(b[6])<<48 | uint64(b[5])<<40 | uint64(b[4])<<32 |
			uint64(b[3])<<24 | uint64(b[2])<<16 | uint64(b[1])<<8 | uint64(b[0])
	default:
		panic("machine: Uint size must be 1, 2, 4 or 8")
	}
}

// SignExtend interprets v as a `size`-byte two's-complement integer and
// returns its value as int64.
func SignExtend(v uint64, size int) int64 {
	shift := uint(64 - size*8)
	return int64(v<<shift) >> shift
}

// TruncInt returns the low `size` bytes of the two's-complement
// representation of v, as an unsigned value suitable for PutUint. Values out
// of range wrap, matching C integer conversion semantics.
func TruncInt(v int64, size int) uint64 {
	if size >= 8 {
		return uint64(v)
	}
	mask := uint64(1)<<(uint(size)*8) - 1
	return uint64(v) & mask
}

// PutFloat stores a floating-point value of the given size (4 or 8 bytes) in
// IEEE 754 format. 4-byte stores convert through float32.
func PutFloat(b []byte, order ByteOrder, size int, v float64) {
	switch size {
	case 4:
		PutUint(b, order, 4, uint64(math.Float32bits(float32(v))))
	case 8:
		PutUint(b, order, 8, math.Float64bits(v))
	default:
		panic("machine: PutFloat size must be 4 or 8")
	}
}

// Float loads an IEEE 754 floating-point value of the given size (4 or 8).
func Float(b []byte, order ByteOrder, size int) float64 {
	switch size {
	case 4:
		return float64(math.Float32frombits(uint32(Uint(b, order, 4))))
	case 8:
		return math.Float64frombits(Uint(b, order, 8))
	default:
		panic("machine: Float size must be 4 or 8")
	}
}
