// Package machine describes machine architectures and computes C-style
// in-memory record layouts for them.
//
// The paper's xml2wire tool runs on C systems where field sizes come from
// sizeof and field offsets from the compiler's struct layout (including
// alignment padding). In Go we cannot observe a C compiler at run time, so
// this package models the relevant properties of an architecture + ABI —
// byte order, primitive sizes, and alignment rules — and reproduces the
// layout algorithm used by conventional C compilers. Several well-known
// architecture profiles are provided so that heterogeneous exchanges
// (little- vs big-endian, 32- vs 64-bit) can be exercised on a single host.
package machine

import (
	"errors"
	"fmt"
)

// ByteOrder identifies the endianness of an architecture.
type ByteOrder int

// Byte orders. The zero value is invalid so that an unset Arch is caught
// early rather than silently treated as little-endian.
const (
	LittleEndian ByteOrder = iota + 1
	BigEndian
)

// String returns the conventional name of the byte order.
func (o ByteOrder) String() string {
	switch o {
	case LittleEndian:
		return "little-endian"
	case BigEndian:
		return "big-endian"
	default:
		return fmt.Sprintf("ByteOrder(%d)", int(o))
	}
}

// ErrUnknownArch is returned by ArchByName for unregistered names.
var ErrUnknownArch = errors.New("machine: unknown architecture")

// Arch captures the data-representation properties of a machine + C ABI that
// matter for binary communication: byte order, the sizes of the C primitive
// types, and the maximum alignment the ABI enforces.
type Arch struct {
	// Name is a short identifier such as "x86-64".
	Name string
	// Order is the architecture byte order.
	Order ByteOrder
	// CharSize, ShortSize, IntSize, LongSize, LongLongSize are the sizes in
	// bytes of the corresponding C integer types.
	CharSize     int
	ShortSize    int
	IntSize      int
	LongSize     int
	LongLongSize int
	// FloatSize and DoubleSize are the sizes of C float and double.
	FloatSize  int
	DoubleSize int
	// PointerSize is the size of a data pointer (used for string and
	// dynamic-array fields, which C programs hold as pointers).
	PointerSize int
	// MaxAlign caps the alignment of any field. Most ABIs align a scalar to
	// min(size, MaxAlign).
	MaxAlign int
}

// Validate reports whether the architecture description is internally
// consistent (all sizes positive, byte order set).
func (a *Arch) Validate() error {
	if a == nil {
		return errors.New("machine: nil arch")
	}
	if a.Order != LittleEndian && a.Order != BigEndian {
		return fmt.Errorf("machine: arch %q: invalid byte order %d", a.Name, a.Order)
	}
	sizes := []struct {
		name string
		v    int
	}{
		{"char", a.CharSize}, {"short", a.ShortSize}, {"int", a.IntSize},
		{"long", a.LongSize}, {"long long", a.LongLongSize},
		{"float", a.FloatSize}, {"double", a.DoubleSize},
		{"pointer", a.PointerSize}, {"max align", a.MaxAlign},
	}
	for _, s := range sizes {
		if s.v <= 0 {
			return fmt.Errorf("machine: arch %q: non-positive %s size %d", a.Name, s.name, s.v)
		}
	}
	return nil
}

// Align returns the ABI alignment for a scalar of the given size: the largest
// power of two that divides size, capped at MaxAlign. Sizes that are not
// powers of two (rare, e.g. 80-bit floats stored as 10 bytes) align to the
// largest power of two <= size.
func (a *Arch) Align(size int) int {
	if size <= 0 {
		return 1
	}
	align := 1
	for align*2 <= size && align*2 <= a.MaxAlign {
		align *= 2
	}
	return align
}

// Predefined architecture profiles. These mirror the ABIs of machines the
// paper's evaluation environment would have mixed (Sun SPARC and Intel x86),
// plus a 64-bit profile for each byte order and a deliberately awkward legacy
// profile (16-bit int) to stress conversion code.
var (
	// X86 is 32-bit little-endian (ILP32): int/long/pointer are 4 bytes.
	X86 = &Arch{
		Name: "x86", Order: LittleEndian,
		CharSize: 1, ShortSize: 2, IntSize: 4, LongSize: 4, LongLongSize: 8,
		FloatSize: 4, DoubleSize: 8, PointerSize: 4, MaxAlign: 4,
	}
	// X86_64 is 64-bit little-endian (LP64): long/pointer are 8 bytes.
	X86_64 = &Arch{
		Name: "x86-64", Order: LittleEndian,
		CharSize: 1, ShortSize: 2, IntSize: 4, LongSize: 8, LongLongSize: 8,
		FloatSize: 4, DoubleSize: 8, PointerSize: 8, MaxAlign: 8,
	}
	// Sparc is 32-bit big-endian (ILP32).
	Sparc = &Arch{
		Name: "sparc", Order: BigEndian,
		CharSize: 1, ShortSize: 2, IntSize: 4, LongSize: 4, LongLongSize: 8,
		FloatSize: 4, DoubleSize: 8, PointerSize: 4, MaxAlign: 8,
	}
	// Sparc64 is 64-bit big-endian (LP64).
	Sparc64 = &Arch{
		Name: "sparc64", Order: BigEndian,
		CharSize: 1, ShortSize: 2, IntSize: 4, LongSize: 8, LongLongSize: 8,
		FloatSize: 4, DoubleSize: 8, PointerSize: 8, MaxAlign: 8,
	}
	// Legacy16 models a 16-bit-int embedded profile, the kind of "integer may
	// be a 2-word type" machine the paper calls out explicitly.
	Legacy16 = &Arch{
		Name: "legacy16", Order: BigEndian,
		CharSize: 1, ShortSize: 2, IntSize: 2, LongSize: 4, LongLongSize: 8,
		FloatSize: 4, DoubleSize: 8, PointerSize: 2, MaxAlign: 2,
	}
)

// Native is the architecture profile xml2wire uses when none is specified.
// Go's runtime is 64-bit little-endian on the platforms this repository
// targets, matching X86_64; keeping it a distinct variable documents intent
// at call sites.
var Native = X86_64

var registry = map[string]*Arch{
	X86.Name:      X86,
	X86_64.Name:   X86_64,
	Sparc.Name:    Sparc,
	Sparc64.Name:  Sparc64,
	Legacy16.Name: Legacy16,
}

// ArchByName returns the predefined architecture with the given name.
func ArchByName(name string) (*Arch, error) {
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownArch, name)
	}
	return a, nil
}

// ArchNames returns the names of all predefined architectures in a stable
// order, useful for command-line help and tests.
func ArchNames() []string {
	return []string{X86.Name, X86_64.Name, Sparc.Name, Sparc64.Name, Legacy16.Name}
}
