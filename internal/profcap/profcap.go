// Package profcap captures profiling evidence when something goes wrong:
// when an alert rule with Capture fires (or an operator POSTs
// /debug/profiles/trigger), it records a CPU profile plus heap and goroutine
// snapshots and keeps them in a bounded in-memory ring served at
// /debug/profiles — so the "why was it slow at 3am" question has pprof data
// attached even though nobody was running a profiler at 3am.
//
// Captures are deliberately hard to abuse: a token budget (default: burst of
// 3, refilling one every 10 minutes) bounds how much profiling overhead a
// flapping alert can impose, only one capture runs at a time (concurrent
// triggers coalesce into the in-flight capture), and the ring keeps the last
// N captures (default 8) in memory — roughly a few hundred KiB each — with an
// optional spill directory for post-mortem collection.
package profcap

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"openmeta/internal/obsv"
)

// Profile kinds inside a capture.
const (
	KindCPU       = "cpu"
	KindHeap      = "heap"
	KindGoroutine = "goroutine"
)

// Capture is one completed capture: the trigger that caused it and the
// profiles taken.
type Capture struct {
	ID     int       `json:"id"`
	Reason string    `json:"reason"`
	Time   time.Time `json:"time"` // trigger time (CPU profiling covers [Time, Time+duration])
	Err    string    `json:"err,omitempty"`

	profiles map[string][]byte
}

// Profiles lists the profile kinds present, for the JSON index.
func (c *Capture) Profiles() []string {
	out := make([]string, 0, len(c.profiles))
	for _, k := range []string{KindCPU, KindHeap, KindGoroutine} {
		if _, ok := c.profiles[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

// Option configures a Capturer.
type Option func(*Capturer)

// WithCPUDuration sets how long the CPU profile runs (default 5s).
func WithCPUDuration(d time.Duration) Option {
	return func(c *Capturer) {
		if d > 0 {
			c.cpuDur = d
		}
	}
}

// WithRing sets how many captures are retained in memory (default 8).
func WithRing(n int) Option {
	return func(c *Capturer) {
		if n > 0 {
			c.ringCap = n
		}
	}
}

// WithBudget sets the capture token bucket: burst tokens available
// immediately, one token refilled every refill (default 3 / 10m). A refill
// of 0 disables refilling (burst captures total).
func WithBudget(burst int, refill time.Duration) Option {
	return func(c *Capturer) {
		c.tokens = float64(burst)
		c.burst = float64(burst)
		c.refill = refill
	}
}

// WithDir also writes every capture's profiles to dir as
// <id>-<unixsec>-<kind>.pprof — the daemons' -profile-capture-dir flag.
func WithDir(dir string) Option {
	return func(c *Capturer) { c.dir = dir }
}

// WithObserver routes the capturer's counters (profcap.captures_total,
// profcap.skipped_total) into reg.
func WithObserver(reg *obsv.Registry) Option {
	return func(c *Capturer) {
		if reg != nil {
			c.captures = reg.Counter("profcap.captures_total")
			c.skipped = reg.Counter("profcap.skipped_total")
		}
	}
}

// Capturer runs rate-limited profile captures. It satisfies alert.Capturer.
// A nil *Capturer ignores triggers, so callers can hold one unconditionally.
type Capturer struct {
	cpuDur  time.Duration
	ringCap int
	dir     string
	refill  time.Duration
	burst   float64

	captures *obsv.Counter
	skipped  *obsv.Counter

	mu       sync.Mutex
	tokens   float64
	lastFill time.Time
	inflight bool
	nextID   int
	ring     []*Capture // oldest first, at most ringCap

	// wg tracks in-flight capture goroutines so tests (and shutdown) can wait.
	wg sync.WaitGroup
}

// New returns a Capturer with the default 5s CPU window, 8-capture ring and
// 3-token / 10-minute budget.
func New(opts ...Option) *Capturer {
	c := &Capturer{
		cpuDur:   5 * time.Second,
		ringCap:  8,
		tokens:   3,
		burst:    3,
		refill:   10 * time.Minute,
		lastFill: time.Now(),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Trigger requests a capture. It never blocks: the capture itself runs on a
// fresh goroutine. A trigger is dropped (counted in profcap.skipped_total)
// when one is already in flight or the token budget is exhausted.
func (c *Capturer) Trigger(reason string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.refillLocked(time.Now())
	if c.inflight || c.tokens < 1 {
		c.mu.Unlock()
		c.skipped.Inc()
		return
	}
	c.tokens--
	c.inflight = true
	c.nextID++
	cp := &Capture{ID: c.nextID, Reason: reason, Time: time.Now()}
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.run(cp)
	}()
}

// Wait blocks until no capture is in flight — test and shutdown hook.
func (c *Capturer) Wait() {
	if c == nil {
		return
	}
	c.wg.Wait()
}

// refillLocked tops up the token bucket from elapsed time.
func (c *Capturer) refillLocked(now time.Time) {
	if c.refill <= 0 {
		return
	}
	c.tokens += float64(now.Sub(c.lastFill)) / float64(c.refill)
	if c.tokens > c.burst {
		c.tokens = c.burst
	}
	c.lastFill = now
}

// run performs the capture and publishes it into the ring.
func (c *Capturer) run(cp *Capture) {
	cp.profiles = make(map[string][]byte, 3)
	var firstErr error

	// CPU first: it spans cpuDur, so the heap/goroutine snapshots that follow
	// land inside or right after the anomaly window. StartCPUProfile fails if
	// some other profiler is attached — keep the rest of the capture anyway.
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		firstErr = fmt.Errorf("cpu: %w", err)
	} else {
		time.Sleep(c.cpuDur)
		pprof.StopCPUProfile()
		cp.profiles[KindCPU] = cpu.Bytes()
	}

	for _, kind := range []string{KindHeap, KindGoroutine} {
		var buf bytes.Buffer
		if err := pprof.Lookup(kind).WriteTo(&buf, 0); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", kind, err)
			}
			continue
		}
		cp.profiles[kind] = buf.Bytes()
	}
	if firstErr != nil {
		cp.Err = firstErr.Error()
	}

	if c.dir != "" {
		c.spill(cp)
	}

	c.mu.Lock()
	c.ring = append(c.ring, cp)
	if len(c.ring) > c.ringCap {
		c.ring = c.ring[len(c.ring)-c.ringCap:]
	}
	c.inflight = false
	c.mu.Unlock()
	c.captures.Inc()
}

// spill writes the capture's profiles to the configured directory; spill
// failures are recorded on the capture but don't fail it (the in-memory ring
// still has the bytes).
func (c *Capturer) spill(cp *Capture) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		if cp.Err == "" {
			cp.Err = "spill: " + err.Error()
		}
		return
	}
	for kind, data := range cp.profiles {
		name := fmt.Sprintf("%d-%d-%s.pprof", cp.ID, cp.Time.Unix(), kind)
		if err := os.WriteFile(filepath.Join(c.dir, name), data, 0o644); err != nil && cp.Err == "" {
			cp.Err = "spill: " + err.Error()
		}
	}
}

// Captures returns the retained captures, newest first.
func (c *Capturer) Captures() []*Capture {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Capture, len(c.ring))
	for i, cp := range c.ring {
		out[len(c.ring)-1-i] = cp
	}
	return out
}

// Get returns one capture's profile bytes by id and kind.
func (c *Capturer) Get(id int, kind string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cp := range c.ring {
		if cp.ID == id {
			b, ok := cp.profiles[kind]
			return b, ok
		}
	}
	return nil, false
}
