package profcap

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openmeta/internal/obsv"
)

// newFast returns a capturer with a CPU window short enough for tests.
func newFast(opts ...Option) *Capturer {
	return New(append([]Option{WithCPUDuration(20 * time.Millisecond)}, opts...)...)
}

// checkPprof asserts the bytes parse as a pprof profile: gzip-wrapped
// protobuf whose first field tags look sane. Full protobuf decoding is out of
// scope (stdlib only); gunzipping and checking non-emptiness catches the
// real failure modes (truncated writes, HTML error pages, raw text).
func checkPprof(t *testing.T, b []byte) {
	t.Helper()
	if len(b) == 0 {
		t.Fatal("empty profile")
	}
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("profile not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	if len(raw) == 0 {
		t.Fatal("profile decompressed to nothing")
	}
}

func TestCaptureProducesParseableProfiles(t *testing.T) {
	reg := obsv.New()
	c := newFast(WithObserver(reg))
	c.Trigger("alert:test-rule")
	c.Wait()

	caps := c.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %d, want 1", len(caps))
	}
	cp := caps[0]
	if cp.Reason != "alert:test-rule" || cp.ID != 1 {
		t.Fatalf("capture = %+v", cp)
	}
	if cp.Err != "" {
		t.Fatalf("capture error: %s", cp.Err)
	}
	kinds := cp.Profiles()
	if len(kinds) != 3 {
		t.Fatalf("profiles = %v, want cpu+heap+goroutine", kinds)
	}
	for _, kind := range kinds {
		b, ok := c.Get(cp.ID, kind)
		if !ok {
			t.Fatalf("Get(%d, %s) missing", cp.ID, kind)
		}
		checkPprof(t, b)
	}
	if got := reg.Snapshot()["profcap.captures_total"]; got != 1 {
		t.Fatalf("captures_total = %d", got)
	}
}

func TestBudgetExhaustionSkips(t *testing.T) {
	reg := obsv.New()
	// Two tokens, no refill: third trigger must be dropped.
	c := newFast(WithObserver(reg), WithBudget(2, 0))
	for i := 0; i < 3; i++ {
		c.Trigger("t")
		c.Wait() // serialize so inflight coalescing doesn't mask the budget
	}
	if got := len(c.Captures()); got != 2 {
		t.Fatalf("captures = %d, want 2 (budget)", got)
	}
	if got := reg.Snapshot()["profcap.skipped_total"]; got != 1 {
		t.Fatalf("skipped_total = %d, want 1", got)
	}
}

// TestBudgetRefills drives refillLocked with explicit clock steps so the
// test doesn't race real capture durations against the refill period.
func TestBudgetRefills(t *testing.T) {
	c := New(WithBudget(3, 10*time.Minute))
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tokens = 0
	c.lastFill = now

	c.refillLocked(now.Add(5 * time.Minute))
	if c.tokens != 0.5 {
		t.Fatalf("tokens after half a period = %v, want 0.5", c.tokens)
	}
	c.refillLocked(now.Add(15 * time.Minute)) // another full period
	if c.tokens != 1.5 {
		t.Fatalf("tokens = %v, want 1.5", c.tokens)
	}
	c.refillLocked(now.Add(10 * time.Hour)) // caps at burst
	if c.tokens != 3 {
		t.Fatalf("tokens = %v, want burst cap 3", c.tokens)
	}

	// refill = 0 disables top-ups entirely.
	c.refill = 0
	c.tokens = 0
	c.refillLocked(now.Add(100 * time.Hour))
	if c.tokens != 0 {
		t.Fatalf("tokens with refill disabled = %v, want 0", c.tokens)
	}
}

func TestInflightCoalesces(t *testing.T) {
	reg := obsv.New()
	c := New(WithCPUDuration(100*time.Millisecond), WithObserver(reg), WithBudget(10, 0))
	c.Trigger("first")
	time.Sleep(10 * time.Millisecond) // let the capture goroutine start
	c.Trigger("second")               // must coalesce, not queue
	c.Wait()
	if got := len(c.Captures()); got != 1 {
		t.Fatalf("captures = %d, want 1 (coalesced)", got)
	}
	if got := reg.Snapshot()["profcap.skipped_total"]; got != 1 {
		t.Fatalf("skipped_total = %d", got)
	}
}

func TestRingBounded(t *testing.T) {
	c := newFast(WithRing(2), WithBudget(10, 0))
	for i := 0; i < 4; i++ {
		c.Trigger("t")
		c.Wait()
	}
	caps := c.Captures()
	if len(caps) != 2 {
		t.Fatalf("ring holds %d, want 2", len(caps))
	}
	// Newest first, oldest evicted.
	if caps[0].ID != 4 || caps[1].ID != 3 {
		t.Fatalf("ring ids = %d,%d want 4,3", caps[0].ID, caps[1].ID)
	}
	if _, ok := c.Get(1, KindHeap); ok {
		t.Fatal("evicted capture still retrievable")
	}
}

func TestSpillDir(t *testing.T) {
	dir := t.TempDir()
	c := newFast(WithDir(filepath.Join(dir, "caps")))
	c.Trigger("t")
	c.Wait()
	files, err := os.ReadDir(filepath.Join(dir, "caps"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("spilled %d files, want 3", len(files))
	}
	for _, f := range files {
		if !strings.HasSuffix(f.Name(), ".pprof") || !strings.HasPrefix(f.Name(), "1-") {
			t.Fatalf("spill name = %q", f.Name())
		}
	}
}

func TestNilCapturerInert(t *testing.T) {
	var c *Capturer
	c.Trigger("x")
	c.Wait()
	if c.Captures() != nil {
		t.Fatal("nil capturer has captures")
	}
	if _, ok := c.Get(1, KindCPU); ok {
		t.Fatal("nil capturer Get ok")
	}
}

func TestHandler(t *testing.T) {
	c := newFast(WithBudget(10, 0))
	c.Trigger("alert:depth")
	c.Wait()

	h := http.StripPrefix("/debug/profiles", Handler(c))
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/debug/profiles")
	if rec.Code != 200 {
		t.Fatalf("index: %d %s", rec.Code, rec.Body.String())
	}
	var idx struct {
		Captures []indexEntry `json:"captures"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("index JSON: %v", err)
	}
	if len(idx.Captures) != 1 || idx.Captures[0].Reason != "alert:depth" {
		t.Fatalf("index = %+v", idx)
	}
	if len(idx.Captures[0].Profiles) != 3 {
		t.Fatalf("index profiles = %v", idx.Captures[0].Profiles)
	}

	rec = get("/debug/profiles/1/heap")
	if rec.Code != 200 {
		t.Fatalf("download: %d", rec.Code)
	}
	checkPprof(t, rec.Body.Bytes())
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "1-heap.pprof") {
		t.Fatalf("Content-Disposition = %q", cd)
	}

	if rec = get("/debug/profiles/9/heap"); rec.Code != 404 {
		t.Fatalf("missing capture: %d, want 404", rec.Code)
	}
	if rec = get("/debug/profiles/x/heap"); rec.Code != 400 {
		t.Fatalf("bad id: %d, want 400", rec.Code)
	}
	if rec = get("/debug/profiles/1"); rec.Code != 400 {
		t.Fatalf("missing kind: %d, want 400", rec.Code)
	}

	// Manual trigger: POST-only, then a second capture appears.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles/trigger", nil))
	if rec.Code != 405 {
		t.Fatalf("GET trigger: %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/profiles/trigger", nil))
	if rec.Code != 202 {
		t.Fatalf("POST trigger: %d, want 202", rec.Code)
	}
	c.Wait()
	if got := len(c.Captures()); got != 2 {
		t.Fatalf("captures after manual trigger = %d", got)
	}

	// Disabled (nil) capturer answers 503.
	rec = httptest.NewRecorder()
	http.StripPrefix("/debug/profiles", Handler(nil)).
		ServeHTTP(rec, httptest.NewRequest("GET", "/debug/profiles", nil))
	if rec.Code != 503 {
		t.Fatalf("nil capturer: %d, want 503", rec.Code)
	}
}
