package profcap

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// indexEntry is one capture in the /debug/profiles JSON index.
type indexEntry struct {
	ID       int       `json:"id"`
	Reason   string    `json:"reason"`
	Time     time.Time `json:"time"`
	Err      string    `json:"err,omitempty"`
	Profiles []string  `json:"profiles"`
}

// Handler serves the capture ring. Mounted under /debug/profiles (via
// http.StripPrefix), it answers:
//
//	GET  /            JSON index of retained captures, newest first
//	GET  /<id>/<kind> raw pprof bytes (kind: cpu | heap | goroutine)
//	POST /trigger     request a manual capture (subject to the same budget)
//
// A nil capturer answers 503 so daemons can mount the endpoint
// unconditionally and light it up only when profile capture is enabled.
func Handler(c *Capturer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if c == nil {
			http.Error(w, "profcap: profile capture disabled", http.StatusServiceUnavailable)
			return
		}
		path := strings.Trim(req.URL.Path, "/")
		switch {
		case path == "":
			serveIndex(c, w)
		case path == "trigger":
			if req.Method != http.MethodPost {
				http.Error(w, "profcap: trigger is POST-only", http.StatusMethodNotAllowed)
				return
			}
			c.Trigger("manual")
			w.WriteHeader(http.StatusAccepted)
			_, _ = w.Write([]byte("capture requested\n"))
		default:
			serveProfile(c, w, path)
		}
	})
}

func serveIndex(c *Capturer, w http.ResponseWriter) {
	caps := c.Captures()
	idx := make([]indexEntry, 0, len(caps))
	for _, cp := range caps {
		idx = append(idx, indexEntry{
			ID: cp.ID, Reason: cp.Reason, Time: cp.Time, Err: cp.Err,
			Profiles: cp.Profiles(),
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Captures []indexEntry `json:"captures"`
	}{Captures: idx})
}

func serveProfile(c *Capturer, w http.ResponseWriter, path string) {
	idStr, kind, ok := strings.Cut(path, "/")
	if !ok {
		http.Error(w, "profcap: want /<id>/<kind>", http.StatusBadRequest)
		return
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.Error(w, "profcap: bad capture id", http.StatusBadRequest)
		return
	}
	b, ok := c.Get(id, kind)
	if !ok {
		http.Error(w, "profcap: no such capture or profile", http.StatusNotFound)
		return
	}
	// pprof output is gzip-compressed protobuf; serve it as a download the
	// way net/http/pprof does.
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		`attachment; filename="`+idStr+`-`+kind+`.pprof"`)
	_, _ = w.Write(b)
}
