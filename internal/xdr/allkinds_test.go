package xdr

import (
	"reflect"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

// allKindsFormat exercises every field kind in scalar, static-array and
// dynamic-array positions.
func allKindsFormat(t *testing.T) *pbio.Format {
	t.Helper()
	ctx, err := pbio.NewContext(machine.X86_64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterSpec("P", []pbio.FieldSpec{
		{Name: "x", Kind: pbio.Float, CType: machine.CFloat},
		{Name: "tag", Kind: pbio.String},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("All", []pbio.FieldSpec{
		{Name: "i", Kind: pbio.Int, CType: machine.CInt},
		{Name: "i8", Kind: pbio.Int, CType: machine.CLongLong},
		{Name: "u", Kind: pbio.Uint, CType: machine.CUInt},
		{Name: "u8", Kind: pbio.Uint, CType: machine.CULongLong},
		{Name: "fl", Kind: pbio.Float, CType: machine.CFloat},
		{Name: "d", Kind: pbio.Float, CType: machine.CDouble},
		{Name: "b", Kind: pbio.Bool, CType: machine.CChar},
		{Name: "c", Kind: pbio.Char, CType: machine.CChar},
		{Name: "s", Kind: pbio.String},
		{Name: "p", Kind: pbio.Nested, NestedName: "P"},
		{Name: "ints", Kind: pbio.Int, CType: machine.CShort, Count: 3},
		{Name: "bools", Kind: pbio.Bool, CType: machine.CChar, Count: 2},
		{Name: "strs", Kind: pbio.String, Count: 2},
		{Name: "ps", Kind: pbio.Nested, NestedName: "P", Count: 2},
		{Name: "dyn", Kind: pbio.Float, CType: machine.CDouble, Dynamic: true, CountField: "n"},
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
		{Name: "dynPs", Kind: pbio.Nested, NestedName: "P", Dynamic: true, CountField: "m"},
		{Name: "m", Kind: pbio.Int, CType: machine.CInt},
		{Name: "dynStrsOk", Kind: pbio.Bool, CType: machine.CChar, Dynamic: true, CountField: "k"},
		{Name: "k", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func allKindsRecord() pbio.Record {
	return pbio.Record{
		"i": int64(-7), "i8": int64(-1 << 40),
		"u": uint64(4000000000), "u8": uint64(1) << 60,
		"fl": float64(float32(1.25)), "d": 2.5,
		"b": true, "c": int64('z'), "s": "hello",
		"p":     pbio.Record{"x": 0.5, "tag": "pt"},
		"ints":  []int64{-1, 0, 1},
		"bools": []bool{true, false},
		"strs":  []string{"a", "bb"},
		"ps":    []pbio.Record{{"x": 1.0, "tag": "q"}, {"x": 2.0, "tag": "r"}},
		"dyn":   []float64{3.5, 4.5},
		"dynPs": []pbio.Record{{"x": 9.0, "tag": "w"}},
		// Typed via []interface{} to exercise that path too.
		"dynStrsOk": []interface{}{true, true, false},
	}
}

func TestAllKindsXDRRoundTrip(t *testing.T) {
	f := allKindsFormat(t)
	rec := allKindsRecord()
	data, err := EncodeRecord(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["i"] != int64(-7) || out["i8"] != int64(-1<<40) {
		t.Errorf("ints: %v %v", out["i"], out["i8"])
	}
	if out["u"] != uint64(4000000000) || out["u8"] != uint64(1)<<60 {
		t.Errorf("uints: %v %v", out["u"], out["u8"])
	}
	if out["fl"] != float64(float32(1.25)) || out["d"] != 2.5 {
		t.Errorf("floats: %v %v", out["fl"], out["d"])
	}
	if out["b"] != true || out["c"] != int64('z') || out["s"] != "hello" {
		t.Errorf("scalars: %v %v %v", out["b"], out["c"], out["s"])
	}
	if !reflect.DeepEqual(out["ints"], []int64{-1, 0, 1}) {
		t.Errorf("ints arr: %v", out["ints"])
	}
	if !reflect.DeepEqual(out["bools"], []bool{true, false}) {
		t.Errorf("bools: %v", out["bools"])
	}
	if !reflect.DeepEqual(out["strs"], []string{"a", "bb"}) {
		t.Errorf("strs: %v", out["strs"])
	}
	ps := out["ps"].([]pbio.Record)
	if len(ps) != 2 || ps[1]["tag"] != "r" {
		t.Errorf("ps: %v", out["ps"])
	}
	if !reflect.DeepEqual(out["dyn"], []float64{3.5, 4.5}) || out["n"] != int64(2) {
		t.Errorf("dyn: %v n=%v", out["dyn"], out["n"])
	}
	dynPs := out["dynPs"].([]pbio.Record)
	if len(dynPs) != 1 || dynPs[0]["x"] != 9.0 {
		t.Errorf("dynPs: %v", out["dynPs"])
	}
	if !reflect.DeepEqual(out["dynStrsOk"], []bool{true, true, false}) {
		t.Errorf("dyn bools: %v", out["dynStrsOk"])
	}
}

func TestAllKindsXDRMatchesNDRSemantics(t *testing.T) {
	// XDR decode and NDR decode must agree on every field value.
	f := allKindsFormat(t)
	rec := allKindsRecord()
	ndr, err := f.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := f.Decode(ndr)
	if err != nil {
		t.Fatal(err)
	}
	xdrData, err := EncodeRecord(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(f, xdrData)
	if err != nil {
		t.Fatal(err)
	}
	for k, wv := range wantRaw {
		gv, ok := got[k]
		if !ok {
			continue // count fields of dynamic arrays may be implicit in XDR
		}
		// Count fields decode as int64 from XDR regardless of sign kind.
		if !reflect.DeepEqual(gv, wv) && !looseIntEqual(gv, wv) {
			t.Errorf("field %q: XDR %v (%T) != NDR %v (%T)", k, gv, gv, wv, wv)
		}
	}
}

func looseIntEqual(a, b interface{}) bool {
	ai, aok := a.(int64)
	bu, bok := b.(uint64)
	if aok && bok {
		return uint64(ai) == bu
	}
	return false
}

func TestXDRBadNestedValue(t *testing.T) {
	f := allKindsFormat(t)
	if _, err := EncodeRecord(f, pbio.Record{"p": 42}); err == nil {
		t.Error("non-record nested value accepted")
	}
	if _, err := EncodeRecord(f, pbio.Record{"bools": []string{"x"}}); err == nil {
		t.Error("mistyped bool array accepted")
	}
}

func TestXDRMapValueForNested(t *testing.T) {
	f := allKindsFormat(t)
	data, err := EncodeRecord(f, pbio.Record{
		"p": map[string]interface{}{"x": 1.5, "tag": "m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["p"].(pbio.Record)["tag"] != "m" {
		t.Errorf("p = %v", out["p"])
	}
}
