package xdr

import (
	"fmt"

	"openmeta/internal/pbio"
)

// This file provides a format-driven XDR codec so the same message formats
// and records used by the NDR path can travel in canonical XDR form. The
// mapping follows the conventions of rpcgen:
//
//   - integer fields of 1–4 bytes become XDR int / unsigned int (4 bytes);
//     8-byte fields become hyper / unsigned hyper;
//   - float fields become float or double by declared size;
//   - booleans become XDR bool (4 bytes);
//   - strings become XDR string (length + bytes + pad);
//   - static arrays are fixed-length arrays (elements only);
//   - dynamic arrays are variable-length arrays (length + elements); their
//     count fields are not transmitted separately (the length prefix carries
//     the information), exactly as an rpcgen-generated stub would do;
//   - nested formats encode recursively.

// EncodeRecord marshals rec according to format f in XDR form.
func EncodeRecord(f *pbio.Format, rec pbio.Record) ([]byte, error) {
	return AppendRecord(make([]byte, 0, f.Size*2), f, rec)
}

// AppendRecord appends the XDR encoding of rec to b.
func AppendRecord(b []byte, f *pbio.Format, rec pbio.Record) ([]byte, error) {
	var err error
	for i := range f.Fields {
		fl := &f.Fields[i]
		if skipAsCountField(f, fl) {
			continue
		}
		val := rec[fl.Name]
		switch {
		case fl.Dynamic:
			b, err = appendDynamic(b, f, fl, val)
		case fl.Count > 1:
			b, err = appendStatic(b, f, fl, val)
		default:
			b, err = appendScalar(b, f, fl, val)
		}
		if err != nil {
			return nil, fmt.Errorf("xdr: field %q: %w", fl.Name, err)
		}
	}
	return b, nil
}

// skipAsCountField reports whether fl only exists to carry a dynamic array
// length (XDR arrays are self-describing, so the field is redundant).
func skipAsCountField(f *pbio.Format, fl *pbio.Field) bool {
	for i := range f.Fields {
		if f.Fields[i].Dynamic && f.Fields[i].CountField == fl.Name {
			return true
		}
	}
	return false
}

func appendScalar(b []byte, f *pbio.Format, fl *pbio.Field, val interface{}) ([]byte, error) {
	switch fl.Kind {
	case pbio.Int, pbio.Char:
		v, err := toInt(val)
		if err != nil {
			return nil, err
		}
		if fl.ElemSize == 8 {
			return AppendInt64(b, v), nil
		}
		return AppendInt32(b, int32(v)), nil
	case pbio.Uint:
		v, err := toUint(val)
		if err != nil {
			return nil, err
		}
		if fl.ElemSize == 8 {
			return AppendUint64(b, v), nil
		}
		return AppendUint32(b, uint32(v)), nil
	case pbio.Float:
		v, err := toFloat(val)
		if err != nil {
			return nil, err
		}
		if fl.ElemSize == 4 {
			return AppendFloat32(b, float32(v)), nil
		}
		return AppendFloat64(b, v), nil
	case pbio.Bool:
		switch v := val.(type) {
		case nil:
			return AppendBool(b, false), nil
		case bool:
			return AppendBool(b, v), nil
		default:
			return nil, fmt.Errorf("got %T, want bool", val)
		}
	case pbio.String:
		switch v := val.(type) {
		case nil:
			return AppendString(b, ""), nil
		case string:
			return AppendString(b, v), nil
		default:
			return nil, fmt.Errorf("got %T, want string", val)
		}
	case pbio.Nested:
		switch v := val.(type) {
		case nil:
			return AppendRecord(b, fl.Nested, pbio.Record{})
		case pbio.Record:
			return AppendRecord(b, fl.Nested, v)
		case map[string]interface{}:
			return AppendRecord(b, fl.Nested, pbio.Record(v))
		default:
			return nil, fmt.Errorf("got %T, want Record", val)
		}
	default:
		return nil, fmt.Errorf("unsupported kind %v", fl.Kind)
	}
}

func appendStatic(b []byte, f *pbio.Format, fl *pbio.Field, val interface{}) ([]byte, error) {
	elems, err := elements(val, fl.Count)
	if err != nil {
		return nil, err
	}
	for _, e := range elems {
		b, err = appendScalar(b, f, fl, e)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendDynamic(b []byte, f *pbio.Format, fl *pbio.Field, val interface{}) ([]byte, error) {
	elems, err := elements(val, -1)
	if err != nil {
		return nil, err
	}
	b = AppendUint32(b, uint32(len(elems)))
	for _, e := range elems {
		b, err = appendScalar(b, f, fl, e)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeRecord unmarshals an XDR record of format f, producing the same
// canonical value types as pbio.Format.Decode so results are comparable.
func DecodeRecord(f *pbio.Format, data []byte) (pbio.Record, error) {
	d := NewDecoder(data)
	rec, err := decodeInto(d, f)
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return rec, nil
}

func decodeInto(d *Decoder, f *pbio.Format) (pbio.Record, error) {
	rec := make(pbio.Record, len(f.Fields))
	for i := range f.Fields {
		fl := &f.Fields[i]
		if skipAsCountField(f, fl) {
			continue
		}
		switch {
		case fl.Dynamic:
			n, err := d.Uint32()
			if err != nil {
				return nil, fmt.Errorf("xdr: field %q: %w", fl.Name, err)
			}
			if int(n)*4 > d.Remaining() && fl.Kind != pbio.Nested {
				return nil, fmt.Errorf("xdr: field %q: %w: count %d", fl.Name, ErrBadLength, n)
			}
			vals, err := decodeArray(d, f, fl, int(n))
			if err != nil {
				return nil, fmt.Errorf("xdr: field %q: %w", fl.Name, err)
			}
			rec[fl.Name] = vals
			rec[fl.CountField] = int64(n)
		case fl.Count > 1:
			vals, err := decodeArray(d, f, fl, fl.Count)
			if err != nil {
				return nil, fmt.Errorf("xdr: field %q: %w", fl.Name, err)
			}
			rec[fl.Name] = vals
		default:
			v, err := decodeScalar(d, f, fl)
			if err != nil {
				return nil, fmt.Errorf("xdr: field %q: %w", fl.Name, err)
			}
			rec[fl.Name] = v
		}
	}
	return rec, nil
}

func decodeScalar(d *Decoder, f *pbio.Format, fl *pbio.Field) (interface{}, error) {
	switch fl.Kind {
	case pbio.Int, pbio.Char:
		if fl.ElemSize == 8 {
			return d.Int64()
		}
		v, err := d.Int32()
		return int64(v), err
	case pbio.Uint:
		if fl.ElemSize == 8 {
			return d.Uint64()
		}
		v, err := d.Uint32()
		return uint64(v), err
	case pbio.Float:
		if fl.ElemSize == 4 {
			v, err := d.Float32()
			return float64(v), err
		}
		return d.Float64()
	case pbio.Bool:
		return d.Bool()
	case pbio.String:
		return d.String()
	case pbio.Nested:
		return decodeInto(d, fl.Nested)
	default:
		return nil, fmt.Errorf("unsupported kind %v", fl.Kind)
	}
}

func decodeArray(d *Decoder, f *pbio.Format, fl *pbio.Field, n int) (interface{}, error) {
	switch fl.Kind {
	case pbio.Int, pbio.Char:
		out := make([]int64, n)
		for i := range out {
			v, err := decodeScalar(d, f, fl)
			if err != nil {
				return nil, err
			}
			out[i] = v.(int64)
		}
		return out, nil
	case pbio.Uint:
		out := make([]uint64, n)
		for i := range out {
			v, err := decodeScalar(d, f, fl)
			if err != nil {
				return nil, err
			}
			out[i] = v.(uint64)
		}
		return out, nil
	case pbio.Float:
		out := make([]float64, n)
		for i := range out {
			v, err := decodeScalar(d, f, fl)
			if err != nil {
				return nil, err
			}
			out[i] = v.(float64)
		}
		return out, nil
	case pbio.Bool:
		out := make([]bool, n)
		for i := range out {
			v, err := decodeScalar(d, f, fl)
			if err != nil {
				return nil, err
			}
			out[i] = v.(bool)
		}
		return out, nil
	case pbio.String:
		out := make([]string, n)
		for i := range out {
			v, err := decodeScalar(d, f, fl)
			if err != nil {
				return nil, err
			}
			out[i] = v.(string)
		}
		return out, nil
	case pbio.Nested:
		out := make([]pbio.Record, n)
		for i := range out {
			v, err := decodeInto(d, fl.Nested)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unsupported kind %v", fl.Kind)
	}
}

// --- coercion (mirrors the NDR encoder's tolerance) ------------------------

func toInt(val interface{}) (int64, error) {
	switch v := val.(type) {
	case nil:
		return 0, nil
	case int:
		return int64(v), nil
	case int32:
		return int64(v), nil
	case int64:
		return v, nil
	case uint64:
		return int64(v), nil
	case uint32:
		return int64(v), nil
	default:
		return 0, fmt.Errorf("got %T, want integer", val)
	}
}

func toUint(val interface{}) (uint64, error) {
	switch v := val.(type) {
	case nil:
		return 0, nil
	case uint:
		return uint64(v), nil
	case uint32:
		return uint64(v), nil
	case uint64:
		return v, nil
	case int:
		return uint64(v), nil
	case int64:
		return uint64(v), nil
	default:
		return 0, fmt.Errorf("got %T, want unsigned", val)
	}
}

func toFloat(val interface{}) (float64, error) {
	switch v := val.(type) {
	case nil:
		return 0, nil
	case float32:
		return float64(v), nil
	case float64:
		return v, nil
	case int:
		return float64(v), nil
	default:
		return 0, fmt.Errorf("got %T, want float", val)
	}
}

func elements(val interface{}, max int) ([]interface{}, error) {
	if val == nil {
		if max > 0 {
			return make([]interface{}, max), nil
		}
		return nil, nil
	}
	var out []interface{}
	switch v := val.(type) {
	case []interface{}:
		out = v
	case []int64:
		out = make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
	case []uint64:
		out = make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
	case []float64:
		out = make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
	case []string:
		out = make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
	case []bool:
		out = make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
	case []pbio.Record:
		out = make([]interface{}, len(v))
		for i := range v {
			out[i] = v[i]
		}
	default:
		return nil, fmt.Errorf("got %T, want slice", val)
	}
	if max >= 0 {
		if len(out) > max {
			return nil, fmt.Errorf("%d values for fixed array of %d", len(out), max)
		}
		if len(out) < max {
			padded := make([]interface{}, max)
			copy(padded, out)
			out = padded
		}
	}
	return out, nil
}
