package xdr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPrimitiveRoundTrips(t *testing.T) {
	var b []byte
	b = AppendInt32(b, -42)
	b = AppendUint32(b, 0xDEADBEEF)
	b = AppendInt64(b, math.MinInt64)
	b = AppendUint64(b, math.MaxUint64)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendFloat32(b, 1.5)
	b = AppendFloat64(b, -2.25)
	b = AppendString(b, "hello")
	b = AppendOpaque(b, []byte{1, 2, 3})
	b = AppendFixedOpaque(b, []byte{9, 8})

	d := NewDecoder(b)
	if v, err := d.Int32(); err != nil || v != -42 {
		t.Errorf("Int32 = %d, %v", v, err)
	}
	if v, err := d.Uint32(); err != nil || v != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x, %v", v, err)
	}
	if v, err := d.Int64(); err != nil || v != math.MinInt64 {
		t.Errorf("Int64 = %d, %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != math.MaxUint64 {
		t.Errorf("Uint64 = %#x, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || !v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Errorf("Bool = %v, %v", v, err)
	}
	if v, err := d.Float32(); err != nil || v != 1.5 {
		t.Errorf("Float32 = %v, %v", v, err)
	}
	if v, err := d.Float64(); err != nil || v != -2.25 {
		t.Errorf("Float64 = %v, %v", v, err)
	}
	if v, err := d.String(); err != nil || v != "hello" {
		t.Errorf("String = %q, %v", v, err)
	}
	if v, err := d.Opaque(); err != nil || len(v) != 3 || v[2] != 3 {
		t.Errorf("Opaque = %v, %v", v, err)
	}
	if v, err := d.FixedOpaque(2); err != nil || v[0] != 9 {
		t.Errorf("FixedOpaque = %v, %v", v, err)
	}
	if err := d.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

func TestAlignment(t *testing.T) {
	// Everything in XDR is a multiple of 4 bytes.
	cases := []struct {
		b    []byte
		want int
	}{
		{AppendString(nil, ""), 4},
		{AppendString(nil, "a"), 8},
		{AppendString(nil, "abcd"), 8},
		{AppendString(nil, "abcde"), 12},
		{AppendOpaque(nil, make([]byte, 5)), 12},
		{AppendFixedOpaque(nil, make([]byte, 5)), 8},
	}
	for i, tt := range cases {
		if len(tt.b) != tt.want {
			t.Errorf("case %d: len = %d, want %d", i, len(tt.b), tt.want)
		}
		if len(tt.b)%4 != 0 {
			t.Errorf("case %d: not 4-aligned", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := NewDecoder([]byte{1, 2}).Uint32(); !errors.Is(err, ErrTruncated) {
		t.Errorf("short Uint32 err = %v", err)
	}
	if _, err := NewDecoder([]byte{0, 0, 0, 2}).Bool(); !errors.Is(err, ErrBadBool) {
		t.Errorf("bad bool err = %v", err)
	}
	if _, err := NewDecoder(AppendUint32(nil, 0xFFFFFFF0)).Opaque(); !errors.Is(err, ErrBadLength) {
		t.Errorf("huge opaque err = %v", err)
	}
	if _, err := NewDecoder([]byte{0, 0, 0, 5, 'a'}).Opaque(); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated opaque err = %v", err)
	}
	// Nonzero padding must be rejected (canonical XDR).
	bad := []byte{0, 0, 0, 1, 'x', 1, 0, 0}
	if _, err := NewDecoder(bad).String(); err == nil {
		t.Error("nonzero padding accepted")
	}
	d := NewDecoder([]byte{0, 0, 0, 0, 0xAA})
	if _, err := d.Uint32(); err != nil {
		t.Fatal(err)
	}
	if err := d.Done(); !errors.Is(err, ErrTrailing) {
		t.Errorf("Done err = %v", err)
	}
	if _, err := NewDecoder(nil).FixedOpaque(-1); !errors.Is(err, ErrBadLength) {
		t.Errorf("negative fixed opaque err = %v", err)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(i int64, u uint64, fl float64, s string, raw []byte) bool {
		var b []byte
		b = AppendInt64(b, i)
		b = AppendUint64(b, u)
		b = AppendFloat64(b, fl)
		b = AppendString(b, s)
		b = AppendOpaque(b, raw)
		d := NewDecoder(b)
		gi, err1 := d.Int64()
		gu, err2 := d.Uint64()
		gf, err3 := d.Float64()
		gs, err4 := d.String()
		gr, err5 := d.Opaque()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return false
		}
		if d.Done() != nil {
			return false
		}
		if len(gr) != len(raw) {
			return false
		}
		for j := range raw {
			if gr[j] != raw[j] {
				return false
			}
		}
		floatOK := gf == fl || (math.IsNaN(gf) && math.IsNaN(fl))
		return gi == i && gu == u && floatOK && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
