package xdr

import (
	"reflect"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

func structureB(t *testing.T) *pbio.Format {
	t.Helper()
	ctx, err := pbio.NewContext(machine.Sparc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("ASDOffEvent", []pbio.FieldSpec{
		{Name: "cntrID", Kind: pbio.String},
		{Name: "arln", Kind: pbio.String},
		{Name: "fltNum", Kind: pbio.Int, CType: machine.CInt},
		{Name: "equip", Kind: pbio.String},
		{Name: "org", Kind: pbio.String},
		{Name: "dest", Kind: pbio.String},
		{Name: "off", Kind: pbio.Uint, CType: machine.CULong, Count: 5},
		{Name: "eta", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "eta_count"},
		{Name: "eta_count", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func sampleRec() pbio.Record {
	return pbio.Record{
		"cntrID": "ZTL", "arln": "DL", "fltNum": int64(1842),
		"equip": "B757", "org": "ATL", "dest": "MCO",
		"off": []uint64{10, 20, 30, 40, 50},
		"eta": []uint64{1000, 2000, 3000},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	f := structureB(t)
	data, err := EncodeRecord(f, sampleRec())
	if err != nil {
		t.Fatal(err)
	}
	if len(data)%4 != 0 {
		t.Errorf("XDR record not 4-aligned: %d", len(data))
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["cntrID"] != "ZTL" || out["fltNum"] != int64(1842) {
		t.Errorf("out = %v", out)
	}
	if !reflect.DeepEqual(out["off"], []uint64{10, 20, 30, 40, 50}) {
		t.Errorf("off = %v", out["off"])
	}
	if !reflect.DeepEqual(out["eta"], []uint64{1000, 2000, 3000}) {
		t.Errorf("eta = %v", out["eta"])
	}
	if out["eta_count"] != int64(3) {
		t.Errorf("eta_count = %v", out["eta_count"])
	}
}

func TestRecordCanonicalSize(t *testing.T) {
	// XDR size is predictable: strings are 4+len+pad, scalars promote to 4.
	f := structureB(t)
	data, err := EncodeRecord(f, sampleRec())
	if err != nil {
		t.Fatal(err)
	}
	// cntrID "ZTL": 4+4; arln "DL": 4+4; fltNum: 4; equip "B757": 4+4;
	// org "ATL": 4+4; dest "MCO": 4+4; off[5]: 20; eta: 4 + 12 = 16.
	want := 8 + 8 + 4 + 8 + 8 + 8 + 20 + 16
	if len(data) != want {
		t.Errorf("encoded size = %d, want %d", len(data), want)
	}
}

func TestRecordNested(t *testing.T) {
	ctx, _ := pbio.NewContext(machine.X86_64)
	if _, err := ctx.RegisterSpec("Point", []pbio.FieldSpec{
		{Name: "x", Kind: pbio.Float, CType: machine.CDouble},
		{Name: "tag", Kind: pbio.String},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("Path", []pbio.FieldSpec{
		{Name: "pts", Kind: pbio.Nested, NestedName: "Point", Dynamic: true, CountField: "n"},
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
		{Name: "origin", Kind: pbio.Nested, NestedName: "Point"},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := pbio.Record{
		"pts": []pbio.Record{
			{"x": 1.0, "tag": "a"},
			{"x": 2.0, "tag": "b"},
		},
		"origin": pbio.Record{"x": 0.5, "tag": "o"},
	}
	data, err := EncodeRecord(f, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	pts := out["pts"].([]pbio.Record)
	if len(pts) != 2 || pts[1]["tag"] != "b" || pts[0]["x"] != 1.0 {
		t.Errorf("pts = %v", out["pts"])
	}
	origin := out["origin"].(pbio.Record)
	if origin["tag"] != "o" {
		t.Errorf("origin = %v", origin)
	}
}

func TestRecordMissingFieldsZero(t *testing.T) {
	f := structureB(t)
	data, err := EncodeRecord(f, pbio.Record{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(f, data)
	if err != nil {
		t.Fatal(err)
	}
	if out["cntrID"] != "" || out["fltNum"] != int64(0) {
		t.Errorf("out = %v", out)
	}
	if !reflect.DeepEqual(out["off"], []uint64{0, 0, 0, 0, 0}) {
		t.Errorf("off = %v", out["off"])
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	f := structureB(t)
	good, _ := EncodeRecord(f, sampleRec())
	if _, err := DecodeRecord(f, good[:len(good)-2]); err == nil {
		t.Error("truncated record accepted")
	}
	if _, err := DecodeRecord(f, append(good, 0, 0, 0, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// A huge dynamic count must be rejected before allocation.
	bad := append([]byte(nil), good...)
	// eta length is after 6 strings (8,8 bytes...) — find by recomputing:
	// offset = 8+8+4+8+8+8+20 = 64.
	bad[64], bad[65], bad[66], bad[67] = 0x7F, 0xFF, 0xFF, 0xFF
	if _, err := DecodeRecord(f, bad); err == nil {
		t.Error("huge count accepted")
	}
}

func TestRecordTypeErrors(t *testing.T) {
	f := structureB(t)
	if _, err := EncodeRecord(f, pbio.Record{"fltNum": "not a number"}); err == nil {
		t.Error("bad int value accepted")
	}
	if _, err := EncodeRecord(f, pbio.Record{"off": "not a slice"}); err == nil {
		t.Error("bad array value accepted")
	}
	if _, err := EncodeRecord(f, pbio.Record{"off": []uint64{1, 2, 3, 4, 5, 6}}); err == nil {
		t.Error("oversized static array accepted")
	}
}
