// Package xdr implements External Data Representation (XDR, RFC 1014), the
// canonical wire format used by Sun RPC and by the commercial platforms the
// paper compares against.
//
// XDR is a "writer makes right, reader makes right again" format: every
// datum is converted to a canonical big-endian, 4-byte-aligned
// representation on send and converted back on receipt — both sides pay
// conversion and copy costs even when the machines are identical. That
// double conversion is exactly the overhead NDR eliminates, which makes this
// package the baseline for the paper's ">50% over XDR-based platforms"
// claim (reproduced in BenchmarkNDRvsXDR and cmd/benchtab -table 3).
package xdr

import (
	"errors"
	"fmt"
	"math"
)

// Errors reported while decoding.
var (
	ErrTruncated = errors.New("xdr: truncated data")
	ErrBadLength = errors.New("xdr: invalid length")
	ErrBadBool   = errors.New("xdr: boolean not 0 or 1")
	ErrTrailing  = errors.New("xdr: trailing bytes")
)

// MaxLength bounds variable-length items as a defence against corrupt input.
const MaxLength = 1 << 30

// AppendUint32 appends an XDR unsigned integer.
func AppendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// AppendInt32 appends an XDR integer.
func AppendInt32(b []byte, v int32) []byte { return AppendUint32(b, uint32(v)) }

// AppendUint64 appends an XDR unsigned hyper integer.
func AppendUint64(b []byte, v uint64) []byte {
	b = AppendUint32(b, uint32(v>>32))
	return AppendUint32(b, uint32(v))
}

// AppendInt64 appends an XDR hyper integer.
func AppendInt64(b []byte, v int64) []byte { return AppendUint64(b, uint64(v)) }

// AppendBool appends an XDR boolean.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return AppendUint32(b, 1)
	}
	return AppendUint32(b, 0)
}

// AppendFloat32 appends an XDR single-precision float.
func AppendFloat32(b []byte, v float32) []byte {
	return AppendUint32(b, math.Float32bits(v))
}

// AppendFloat64 appends an XDR double-precision float.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendUint64(b, math.Float64bits(v))
}

// pad returns the number of padding bytes to reach 4-byte alignment.
func pad(n int) int { return (4 - n%4) % 4 }

// AppendOpaque appends variable-length opaque data (length + bytes + pad).
func AppendOpaque(b, data []byte) []byte {
	b = AppendUint32(b, uint32(len(data)))
	b = append(b, data...)
	return append(b, make([]byte, pad(len(data)))...)
}

// AppendFixedOpaque appends fixed-length opaque data (bytes + pad, no
// length).
func AppendFixedOpaque(b, data []byte) []byte {
	b = append(b, data...)
	return append(b, make([]byte, pad(len(data)))...)
}

// AppendString appends an XDR string (same encoding as opaque).
func AppendString(b []byte, s string) []byte {
	b = AppendUint32(b, uint32(len(s)))
	b = append(b, s...)
	return append(b, make([]byte, pad(len(s)))...)
}

// Decoder reads XDR items from a byte slice.
type Decoder struct {
	data []byte
	pos  int
}

// NewDecoder returns a Decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.data) - d.pos }

// Done verifies that the input was consumed exactly.
func (d *Decoder) Done() error {
	if d.pos != len(d.data) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(d.data)-d.pos)
	}
	return nil
}

// Uint32 reads an XDR unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	if d.pos+4 > len(d.data) {
		return 0, ErrTruncated
	}
	v := uint32(d.data[d.pos])<<24 | uint32(d.data[d.pos+1])<<16 |
		uint32(d.data[d.pos+2])<<8 | uint32(d.data[d.pos+3])
	d.pos += 4
	return v, nil
}

// Int32 reads an XDR integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 reads an XDR unsigned hyper integer.
func (d *Decoder) Uint64() (uint64, error) {
	hi, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	lo, err := d.Uint32()
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// Int64 reads an XDR hyper integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool reads an XDR boolean, enforcing the canonical 0/1 encoding.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, ErrBadBool
	}
}

// Float32 reads an XDR single-precision float.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 reads an XDR double-precision float.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// Opaque reads variable-length opaque data.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > MaxLength {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, n)
	}
	return d.FixedOpaque(int(n))
}

// FixedOpaque reads n opaque bytes plus padding.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	if n < 0 {
		return nil, ErrBadLength
	}
	total := n + pad(n)
	if d.pos+total > len(d.data) {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, d.data[d.pos:])
	for i := d.pos + n; i < d.pos+total; i++ {
		if d.data[i] != 0 {
			return nil, fmt.Errorf("xdr: nonzero padding byte")
		}
	}
	d.pos += total
	return out, nil
}

// String reads an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}
