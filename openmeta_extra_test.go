package openmeta_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"openmeta"
	"openmeta/internal/airline"
)

func TestFacadeRecordFiles(t *testing.T) {
	ctx, err := openmeta.NewContext(openmeta.ArchSparc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fw, err := openmeta.NewRecordFileWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gen := airline.NewFlightGen(3)
	for i := 0; i < 5; i++ {
		if err := fw.WriteValue(set.Root(), gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	rctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := openmeta.NewRecordFileReader(&buf, rctx)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, _, err := fr.ReadValue()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 5 {
		t.Errorf("records = %d", n)
	}
}

func TestFacadeSchemaGenerationRoundTrip(t *testing.T) {
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := openmeta.SchemaDocumentForFormats("urn:rt", set.Formats...)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	set2, err := openmeta.RegisterSchemaDocument(ctx2, doc)
	if err != nil {
		t.Fatal(err)
	}
	if set2.Root().ID != set.Root().ID {
		t.Error("schema generation round trip changed the format")
	}
}

func TestFacadeMatching(t *testing.T) {
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	record, err := f.Encode(openmeta.Record{"cntrID": "Z", "off": []uint64{1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := openmeta.MatchBinary([]*openmeta.Format{f}, record)
	if err != nil {
		t.Fatal(err)
	}
	if !scores[0].Exact {
		t.Errorf("own record did not match exactly: %+v", scores[0])
	}
	msg, err := openmeta.EncodeXMLText(f, openmeta.Record{"off": []uint64{1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	xs, err := openmeta.MatchXML([]*openmeta.Format{f}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !xs[0].Exact {
		t.Errorf("own XML message did not match exactly: %+v", xs[0])
	}
}

func TestFacadeDeriveSubset(t *testing.T) {
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := openmeta.DeriveSubset(set.Root(), []string{"cntrID", "dest"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Fields) != 2 {
		t.Errorf("fields = %d", len(sub.Fields))
	}
	plan, err := openmeta.CompilePlan(set.Root(), sub)
	if err != nil {
		t.Fatal(err)
	}
	full, err := set.Root().Encode(openmeta.Record{"cntrID": "ZTL", "dest": "MCO", "fltNum": 9})
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := plan.Convert(full)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sub.Decode(sliced)
	if err != nil {
		t.Fatal(err)
	}
	if rec["dest"] != "MCO" {
		t.Errorf("dest = %v", rec["dest"])
	}
	if _, present := rec["fltNum"]; present {
		t.Error("dropped field leaked through projection")
	}
}

func TestFacadeWatcher(t *testing.T) {
	src := openmeta.StaticSchemas(airline.Schemas())
	w := openmeta.WatchSchemas(src, 10*time.Millisecond)
	defer w.Close()
	w.Add("WeatherObs")
	select {
	case u := <-w.Updates():
		if u.Err != nil || u.Schema == nil {
			t.Fatalf("update = %+v", u)
		}
		if u.Schema.Types[0].Name != "WeatherObs" {
			t.Errorf("schema = %q", u.Schema.Types[0].Name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no update")
	}
}

func TestFacadeGenerateGo(t *testing.T) {
	src, err := openmeta.GenerateGo(flightSchema, openmeta.GenOptions{Package: "msgs"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "type ASDOffEvent struct") {
		t.Errorf("generated source missing struct:\n%s", src)
	}
}

func TestFacadeScopedSubscription(t *testing.T) {
	broker, err := openmeta.ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	pctx, err := openmeta.NewContext(openmeta.ArchSparc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(pctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()

	sctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := openmeta.DialSubscriber(broker.Addr().String(), sctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.SubscribeFields(airline.FlightStream, "cntrID"); err != nil {
		t.Fatal(err)
	}
	pub, err := openmeta.DialPublisher(broker.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	rec := openmeta.Record{"cntrID": "ZME", "fltNum": 4242}
	got := make(chan openmeta.Event, 1)
	errc := make(chan error, 1)
	go func() {
		ev, err := sub.Next()
		if err != nil {
			errc <- err
			return
		}
		got <- ev
	}()
	deadline := time.After(5 * time.Second)
	for {
		if err := pub.PublishRecord(airline.FlightStream, f, rec); err != nil {
			t.Fatal(err)
		}
		select {
		case ev := <-got:
			out, err := ev.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if out["cntrID"] != "ZME" {
				t.Errorf("cntrID = %v", out["cntrID"])
			}
			if _, present := out["fltNum"]; present {
				t.Error("hidden field delivered")
			}
			return
		case err := <-errc:
			t.Fatal(err)
		case <-deadline:
			t.Fatal("no scoped event")
		case <-time.After(2 * time.Millisecond):
		}
	}
}
