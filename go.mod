module openmeta

go 1.22
