package openmeta_test

import (
	"context"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"openmeta"
	"openmeta/internal/airline"
)

const flightSchema = airline.FlightSchema

func TestFacadeQuickstartFlow(t *testing.T) {
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := set.Lookup("ASDOffEvent")
	if !ok {
		t.Fatal("format not registered")
	}
	wire, err := f.Encode(openmeta.Record{
		"cntrID": "ZTL", "fltNum": 1842, "dest": "MCO",
		"off": []uint64{1, 2, 3, 4, 5}, "eta": []uint64{100},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if rec["dest"] != "MCO" || rec["fltNum"] != int64(1842) {
		t.Errorf("rec = %v", rec)
	}
}

func TestFacadeCrossArchPlan(t *testing.T) {
	sparc, err := openmeta.NewContext(openmeta.ArchSparc)
	if err != nil {
		t.Fatal(err)
	}
	x64, err := openmeta.NewContext(openmeta.ArchX86_64)
	if err != nil {
		t.Fatal(err)
	}
	setS, err := openmeta.RegisterSchemaDocument(sparc, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	setX, err := openmeta.RegisterSchemaDocument(x64, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := openmeta.CompilePlan(setS.Root(), setX.Root())
	if err != nil {
		t.Fatal(err)
	}
	wire, err := setS.Root().Encode(openmeta.Record{"cntrID": "ZID", "eta": []uint64{7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	conv, err := plan.Convert(wire)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := setX.Root().Decode(conv)
	if err != nil {
		t.Fatal(err)
	}
	if rec["cntrID"] != "ZID" || !reflect.DeepEqual(rec["eta"], []uint64{7, 8}) {
		t.Errorf("rec = %v", rec)
	}
}

func TestFacadeDiscoveryChain(t *testing.T) {
	repo := openmeta.NewRepository()
	if err := repo.Put("ASDOffEvent", flightSchema); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	client, err := openmeta.NewDiscoveryClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resolver := openmeta.NewResolver(client, openmeta.StaticSchemas(airline.Schemas()))

	pctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.DiscoverAndRegister(context.Background(), resolver, pctx, "ASDOffEvent")
	if err != nil {
		t.Fatal(err)
	}
	if set.Root().Name != "ASDOffEvent" {
		t.Errorf("root = %q", set.Root().Name)
	}

	// Fallback path: a name only the compiled-in source knows.
	set2, err := openmeta.DiscoverAndRegister(context.Background(), resolver, pctx, "WeatherObs")
	if err != nil {
		t.Fatal(err)
	}
	if set2.Root().Name != "WeatherObs" {
		t.Errorf("root = %q", set2.Root().Name)
	}
}

func TestFacadeEventBackbone(t *testing.T) {
	broker, err := openmeta.ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	pctx, err := openmeta.NewContext(openmeta.ArchSparc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(pctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()

	sctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := openmeta.DialSubscriber(broker.Addr().String(), sctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(airline.FlightStream); err != nil {
		t.Fatal(err)
	}

	pub, err := openmeta.DialPublisher(broker.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	gen := airline.NewFlightGen(5)
	rec := gen.Next()
	// Subscribe is fire-and-forget, so keep publishing until the first
	// event comes back (bounded by a deadline).
	type result struct {
		ev  openmeta.Event
		err error
	}
	got := make(chan result, 1)
	go func() {
		ev, err := sub.Next()
		got <- result{ev, err}
	}()
	deadline := time.After(5 * time.Second)
	for {
		if err := pub.PublishRecord(airline.FlightStream, f, rec); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-got:
			if r.err != nil {
				t.Fatal(r.err)
			}
			if r.ev.Stream != airline.FlightStream {
				t.Errorf("stream = %q", r.ev.Stream)
			}
			out, err := r.ev.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if out["cntrID"] != rec["cntrID"] {
				t.Errorf("cntrID = %v, want %v", out["cntrID"], rec["cntrID"])
			}
			return
		case <-deadline:
			t.Fatal("no event within deadline")
		case <-time.After(2 * time.Millisecond):
			// subscription not yet registered; publish again
		}
	}
}

func TestFacadeBaselineCodecs(t *testing.T) {
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	rec := openmeta.Record{"cntrID": "ZTL", "fltNum": 7, "off": []uint64{1, 2, 3, 4, 5}}

	xdrData, err := openmeta.EncodeXDR(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := openmeta.DecodeXDR(f, xdrData)
	if err != nil {
		t.Fatal(err)
	}
	if back["fltNum"] != int64(7) {
		t.Errorf("xdr fltNum = %v", back["fltNum"])
	}

	xmlData, err := openmeta.EncodeXMLText(f, rec)
	if err != nil {
		t.Fatal(err)
	}
	back2, err := openmeta.DecodeXMLText(f, xmlData)
	if err != nil {
		t.Fatal(err)
	}
	if back2["cntrID"] != "ZTL" {
		t.Errorf("xml cntrID = %v", back2["cntrID"])
	}
}

func TestFacadeMetaRoundTripAndWire(t *testing.T) {
	ctx, err := openmeta.NewContext(openmeta.ArchSparc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f := set.Root()
	meta := openmeta.MarshalFormatMeta(f)
	g, err := openmeta.UnmarshalFormatMeta(meta)
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != f.ID {
		t.Error("meta round trip changed ID")
	}

	// Wire writer/reader over an in-process connection.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		w := openmeta.NewWireWriter(c1)
		data, err := f.Encode(openmeta.Record{"cntrID": "ZNY"})
		if err == nil {
			_ = w.WriteRecord(f, data)
		}
	}()
	rctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	r := openmeta.NewWireReader(c2, rctx)
	gf, data, err := r.ReadRecord()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := gf.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec["cntrID"] != "ZNY" {
		t.Errorf("cntrID = %v", rec["cntrID"])
	}
}

func TestFacadeArchHelpers(t *testing.T) {
	if len(openmeta.ArchNames()) < 5 {
		t.Error("too few predefined arches")
	}
	a, err := openmeta.ArchByName("sparc")
	if err != nil || a != openmeta.ArchSparc {
		t.Errorf("ArchByName(sparc) = %v, %v", a, err)
	}
	if _, err := openmeta.ArchByName("vax"); err == nil {
		t.Error("unknown arch accepted")
	}
}
