// Self-describing record files: PBIO is Portable Binary I/O — the same NDR
// encoding that crosses networks persists to files, with format metadata
// embedded so the file is readable on any machine, years later, without
// the writing program. This example writes a day of synthetic flight and
// weather events (as a big-endian 32-bit machine would have), then reads
// the file back with no compiled-in knowledge of its formats, and finally
// shows cmd/omcat-style format discovery on the file.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"openmeta/internal/airline"
	"openmeta/internal/core"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "openmeta-fileio")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ops.pbio")

	// --- Writer: a capture process on a simulated SPARC -----------------
	wctx, err := pbio.NewContext(machine.Sparc)
	if err != nil {
		return err
	}
	flightSet, err := core.RegisterDocument(wctx, []byte(airline.FlightSchema))
	if err != nil {
		return err
	}
	weatherSet, err := core.RegisterDocument(wctx, []byte(airline.WeatherSchema))
	if err != nil {
		return err
	}
	flights := airline.NewFlightGen(7)
	weather := airline.NewWeatherGen(7)

	fw, err := pbio.CreateFile(path)
	if err != nil {
		return err
	}
	const nEach = 4
	for i := 0; i < nEach; i++ {
		if err := fw.WriteValue(flightSet.Root(), flights.Next()); err != nil {
			return err
		}
		if err := fw.WriteValue(weatherSet.Root(), weather.Next()); err != nil {
			return err
		}
	}
	if err := fw.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d bytes) to %s\n", 2*nEach, info.Size(), path)

	// --- Reader: a different machine, no prior format knowledge ---------
	rctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return err
	}
	fr, err := pbio.OpenFile(path, rctx)
	if err != nil {
		return err
	}
	defer fr.Close()

	formats := map[string]int{}
	for {
		f, rec, err := fr.ReadValue()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		formats[f.Name]++
		switch f.Name {
		case "ASDOffEvent":
			fmt.Printf("  flight  %v%v %v->%v\n", rec["arln"], rec["fltNum"], rec["org"], rec["dest"])
		case "WeatherObs":
			fmt.Printf("  weather %v %.1fC\n", rec["station"], rec["tempC"])
		}
	}
	fmt.Printf("file carried its own metadata: ")
	for name, n := range formats {
		fmt.Printf("%s x%d (origin %s)  ", name, n, machine.Sparc.Name)
	}
	fmt.Println()
	return nil
}
