// Heterogeneous exchange: the byte-order, field-alignment and type-size
// issues the paper's NDR design addresses, made visible. A record is
// encoded in the natural representation of a simulated 32-bit big-endian
// SPARC, shipped over the PBIO wire protocol (format metadata once, then
// records by ID), and received on this machine (64-bit little-endian),
// where a conversion plan compiled once per format pair makes it right.
package main

import (
	"fmt"
	"log"
	"net"

	"openmeta"
)

const schema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="Telemetry">
    <xsd:element name="sensor" type="xsd:string" />
    <xsd:element name="seq" type="xsd:integer" />
    <xsd:element name="value" type="xsd:double" />
    <xsd:element name="samples" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Sender: simulated SPARC (big-endian, 4-byte longs and pointers).
	sparcCtx, err := openmeta.NewContext(openmeta.ArchSparc)
	if err != nil {
		return err
	}
	sparcSet, err := openmeta.RegisterSchemaDocument(sparcCtx, schema)
	if err != nil {
		return err
	}
	sparcFmt := sparcSet.Root()

	// Receiver: this machine's profile.
	nativeCtx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		return err
	}
	nativeSet, err := openmeta.RegisterSchemaDocument(nativeCtx, schema)
	if err != nil {
		return err
	}
	nativeFmt := nativeSet.Root()

	fmt.Printf("same XML schema, two layouts:\n")
	fmt.Printf("  %-8s %-14s record=%3dB  seq@%d value@%d (long=4, ptr=4, big-endian)\n",
		"sender:", openmeta.ArchSparc.Name, sparcFmt.Size,
		fieldOffset(sparcFmt, "seq"), fieldOffset(sparcFmt, "value"))
	fmt.Printf("  %-8s %-14s record=%3dB  seq@%d value@%d (long=8, ptr=8, little-endian)\n\n",
		"receiver:", openmeta.NativeArch.Name, nativeFmt.Size,
		fieldOffset(nativeFmt, "seq"), fieldOffset(nativeFmt, "value"))

	rec := openmeta.Record{
		"sensor": "wing-strain-04", "seq": 258, "value": 0.15625,
		"samples": []uint64{0x01020304, 0xAABBCCDD},
	}

	// Ship it through the wire protocol over an in-process connection.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	sendErr := make(chan error, 1)
	go func() {
		defer c1.Close()
		w := openmeta.NewWireWriter(c1)
		wire, err := sparcFmt.Encode(rec)
		if err != nil {
			sendErr <- err
			return
		}
		fmt.Printf("sender NDR bytes (%d): % x ...\n", len(wire), wire[:16])
		sendErr <- w.WriteRecord(sparcFmt, wire)
	}()

	recvCatalog, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		return err
	}
	r := openmeta.NewWireReader(c2, recvCatalog)
	srcFmt, data, err := r.ReadRecord()
	if err != nil {
		return err
	}
	if err := <-sendErr; err != nil {
		return err
	}
	fmt.Printf("received format %q from wire metadata: origin %s, %s\n",
		srcFmt.Name, srcFmt.Arch.Name, srcFmt.Arch.Order)

	// Receiver makes right, once per format pair.
	cache := openmeta.NewPlanCache()
	plan, err := cache.Plan(srcFmt, nativeFmt)
	if err != nil {
		return err
	}
	fmt.Printf("compiled conversion plan: %d instructions (identity=%v)\n",
		plan.Ops(), plan.Identity)
	converted, err := plan.Convert(data)
	if err != nil {
		return err
	}
	fmt.Printf("receiver NDR bytes (%d): % x ...\n", len(converted), converted[:16])

	out, err := nativeFmt.Decode(converted)
	if err != nil {
		return err
	}
	fmt.Printf("\ndecoded on receiver: sensor=%v seq=%v value=%v samples=%x\n",
		out["sensor"], out["seq"], out["value"], out["samples"])

	// The homogeneous case for contrast: the plan degenerates to a copy.
	idPlan, err := cache.Plan(srcFmt, srcFmt)
	if err != nil {
		return err
	}
	fmt.Printf("homogeneous plan for comparison: %d instructions (identity=%v) — receive is a memcpy\n",
		idPlan.Ops(), idPlan.Identity)
	return nil
}

func fieldOffset(f *openmeta.Format, name string) int {
	fl, ok := f.FieldByName(name)
	if !ok {
		return -1
	}
	return fl.Offset
}
