// Dynamic incorporation of message formats at run time — the paper's §7
// future work, running. A consumer watches the metadata repository; when
// the operator publishes a new version of a format (or a brand-new format),
// the watcher delivers the schema and the consumer re-registers and keeps
// processing, all without restarting.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"openmeta"
)

const v1 = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="GateEvent">
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="gate" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>`

const v2 = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="GateEvent">
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="gate" type="xsd:string" />
    <xsd:element name="remote" type="xsd:boolean" />
  </xsd:complexType>
</xsd:schema>`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Metadata repository with v1 of the format.
	repo := openmeta.NewRepository()
	if err := repo.Put("GateEvent", v1); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: repo.Handler()}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()

	client, err := openmeta.NewDiscoveryClient("http://" + ln.Addr().String())
	if err != nil {
		return err
	}
	// Poll aggressively for the demo; production would use minutes.
	watcher := openmeta.WatchSchemas(noCacheSource{client}, 50*time.Millisecond)
	defer watcher.Close()
	watcher.Add("GateEvent")

	// The consumer's live state: re-built on every update.
	var format *openmeta.Format
	apply := func(u openmeta.SchemaUpdate) error {
		if u.Err != nil {
			fmt.Printf("watcher: discovery failing: %v\n", u.Err)
			return nil
		}
		ctx, err := openmeta.NewContext(openmeta.NativeArch)
		if err != nil {
			return err
		}
		set, err := openmeta.RegisterSchema(ctx, u.Schema)
		if err != nil {
			return err
		}
		format = set.Root()
		fmt.Printf("watcher: incorporated %q v-id %s (%d fields) without restarting\n",
			format.Name, format.ID, len(format.Fields))
		return nil
	}

	next := func() openmeta.SchemaUpdate {
		select {
		case u := <-watcher.Updates():
			return u
		case <-time.After(5 * time.Second):
			log.Fatal("no watcher update")
			return openmeta.SchemaUpdate{}
		}
	}

	// Initial version arrives and records flow.
	if err := apply(next()); err != nil {
		return err
	}
	wire, err := format.Encode(openmeta.Record{"fltNum": 1842, "gate": "B23"})
	if err != nil {
		return err
	}
	rec, err := format.Decode(wire)
	if err != nil {
		return err
	}
	fmt.Printf("processing v1 record: flight %v at gate %v\n\n", rec["fltNum"], rec["gate"])

	// The operator publishes v2. The running consumer picks it up live.
	fmt.Println("-- operator publishes GateEvent v2 on the repository --")
	if err := repo.Put("GateEvent", v2); err != nil {
		return err
	}
	if err := apply(next()); err != nil {
		return err
	}
	wire2, err := format.Encode(openmeta.Record{"fltNum": 1842, "gate": "T4", "remote": true})
	if err != nil {
		return err
	}
	rec2, err := format.Decode(wire2)
	if err != nil {
		return err
	}
	fmt.Printf("processing v2 record: flight %v at gate %v (remote stand: %v)\n",
		rec2["fltNum"], rec2["gate"], rec2["remote"])
	return nil
}

// noCacheSource forces the discovery client to revalidate on every poll so
// the demo reacts immediately; the ETag conditional request keeps that
// cheap.
type noCacheSource struct {
	c *openmeta.DiscoveryClient
}

func (s noCacheSource) Schema(ctx context.Context, name string) (*openmeta.Schema, error) {
	s.c.Invalidate(name)
	return s.c.Schema(ctx, name)
}

func (s noCacheSource) Describe() string { return "no-cache " + s.c.Describe() }
