// The paper's airline operational information system (Figures 1 and 3),
// end to end in one process:
//
//   - a metadata repository serves the streams' XML Schema documents over
//     HTTP;
//   - an event backbone broker routes NDR records by stream name;
//   - capture points (FAA flight movement, NOAA weather, corporate data
//     mining) discover their formats from the repository with xml2wire and
//     publish onto the backbone — the flight feed simulates a big-endian
//     source machine;
//   - a display point subscribes to everything and decodes generically
//     (it has no compiled-in knowledge of any format);
//   - an access point subscribes to flights only and decodes into a Go
//     struct through a binding.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"openmeta"
	"openmeta/internal/airline"
)

const eventsPerStream = 5

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Metadata repository (the "publicly known intranet server") -----
	repo := openmeta.NewRepository()
	for name, doc := range airline.Schemas() {
		if err := repo.Put(name, doc); err != nil {
			return err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	repoSrv := &http.Server{Handler: repo.Handler()}
	go repoSrv.Serve(ln) //nolint:errcheck // closed on shutdown
	defer repoSrv.Close()
	repoURL := "http://" + ln.Addr().String()
	fmt.Printf("metadata repository at %s (schemas: ASDOffEvent, WeatherObs, LoadTrend)\n", repoURL)

	// --- Event backbone --------------------------------------------------
	broker, err := openmeta.ListenBroker("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer broker.Close()
	fmt.Printf("event backbone at %s\n\n", broker.Addr())

	// Discovery for every participant: remote repository first, compiled-in
	// schemas as the fault-tolerant fallback of the paper's §3.3.
	client, err := openmeta.NewDiscoveryClient(repoURL)
	if err != nil {
		return err
	}
	resolver := openmeta.NewResolver(client, openmeta.StaticSchemas(airline.Schemas()))

	// --- Consumers (started first so no events are missed) ---------------
	var wg sync.WaitGroup
	displayDone := make(chan error, 1)
	accessDone := make(chan error, 1)

	displaySub, err := subscribe(broker.Addr().String(),
		airline.FlightStream, airline.WeatherStream, airline.MiningStream)
	if err != nil {
		return err
	}
	defer displaySub.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		displayDone <- displayPoint(displaySub, 3*eventsPerStream)
	}()

	accessSub, err := subscribe(broker.Addr().String(), airline.FlightStream)
	if err != nil {
		return err
	}
	defer accessSub.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		accessDone <- accessPoint(resolver, accessSub, eventsPerStream)
	}()

	// Give the two subscriptions a moment to register with the broker.
	time.Sleep(100 * time.Millisecond)

	// --- Capture points ---------------------------------------------------
	if err := capturePoints(resolver, broker.Addr().String()); err != nil {
		return err
	}

	if err := <-displayDone; err != nil {
		return fmt.Errorf("display point: %w", err)
	}
	if err := <-accessDone; err != nil {
		return fmt.Errorf("access point: %w", err)
	}
	wg.Wait()
	fmt.Println("\nall consumers satisfied; shutting down")
	return nil
}

func subscribe(addr string, streams ...string) (*openmeta.Subscriber, error) {
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		return nil, err
	}
	sub, err := openmeta.DialSubscriber(addr, ctx)
	if err != nil {
		return nil, err
	}
	for _, s := range streams {
		if err := sub.Subscribe(s); err != nil {
			sub.Close()
			return nil, err
		}
	}
	return sub, nil
}

// capturePoints discovers each stream's format from the repository and
// publishes synthetic events. The flight feed registers its format for a
// simulated big-endian SPARC to exercise heterogeneity end to end.
func capturePoints(resolver *openmeta.Resolver, brokerAddr string) error {
	pub, err := openmeta.DialPublisher(brokerAddr)
	if err != nil {
		return err
	}
	defer pub.Close()

	type feed struct {
		stream  string
		schema  string
		arch    *openmeta.Arch
		root    string
		nextRec func() openmeta.Record
	}
	flights := airline.NewFlightGen(1)
	weather := airline.NewWeatherGen(2)
	mining := airline.NewMiningGen(3)
	feeds := []feed{
		{airline.FlightStream, "ASDOffEvent", openmeta.ArchSparc, "ASDOffEvent", flights.Next},
		{airline.WeatherStream, "WeatherObs", openmeta.NativeArch, "WeatherObs", weather.Next},
		{airline.MiningStream, "LoadTrend", openmeta.NativeArch, "LoadTrend", mining.Next},
	}
	for _, f := range feeds {
		pctx, err := openmeta.NewContext(f.arch)
		if err != nil {
			return err
		}
		set, err := openmeta.DiscoverAndRegister(context.Background(), resolver, pctx, f.schema)
		if err != nil {
			return err
		}
		format, ok := set.Lookup(f.root)
		if !ok {
			return fmt.Errorf("stream %s: format %s missing", f.stream, f.root)
		}
		fmt.Printf("capture point %-22s discovered format %q (%s, %d bytes/record)\n",
			f.stream, format.Name, f.arch.Name, format.Size)
		for i := 0; i < eventsPerStream; i++ {
			if err := pub.PublishRecord(f.stream, format, f.nextRec()); err != nil {
				return err
			}
		}
	}
	fmt.Println()
	return nil
}

// displayPoint is a pure consumer: it learns every format from the wire and
// renders records without any compiled-in type knowledge.
func displayPoint(sub *openmeta.Subscriber, want int) error {
	for i := 0; i < want; i++ {
		ev, err := sub.Next()
		if err != nil {
			return err
		}
		rec, err := ev.Decode()
		if err != nil {
			return err
		}
		switch ev.Format.Name {
		case "ASDOffEvent":
			fmt.Printf("  [display] %-22s %v flight %v %v->%v\n",
				ev.Stream, rec["arln"], rec["fltNum"], rec["org"], rec["dest"])
		case "WeatherObs":
			fmt.Printf("  [display] %-22s %v %.1fC wind %v@%vkt\n",
				ev.Stream, rec["station"], rec["tempC"], rec["windDir"], rec["windKts"])
		case "LoadTrend":
			routes := rec["routes"].([]openmeta.Record)
			fmt.Printf("  [display] %-22s window %v-%v, %d routes\n",
				ev.Stream, rec["windowStart"], rec["windowEnd"], len(routes))
		default:
			fmt.Printf("  [display] %-22s unknown format %s\n", ev.Stream, ev.Format.Name)
		}
	}
	return nil
}

// accessPoint knows the flight format at the language level: it binds the
// discovered format to a Go struct and works with typed values.
func accessPoint(resolver *openmeta.Resolver, sub *openmeta.Subscriber, want int) error {
	bindings := make(map[openmeta.FormatID]*openmeta.Binding)
	for i := 0; i < want; i++ {
		ev, err := sub.Next()
		if err != nil {
			return err
		}
		b := bindings[ev.Format.ID]
		if b == nil {
			if b, err = ev.Format.Bind(airline.Flight{}); err != nil {
				return err
			}
			bindings[ev.Format.ID] = b
		}
		var f airline.Flight
		if err := b.Decode(ev.Data, &f); err != nil {
			return err
		}
		fmt.Printf("  [access]  %-22s gate lookup: %s%d (%s) off block %d\n",
			ev.Stream, f.Arln, f.FltNum, f.Equip, f.Off[0])
	}
	_ = resolver
	return nil
}
