// Quickstart: define a message format in XML Schema, register it at run
// time with xml2wire, and move records in efficient binary NDR form — both
// through the dynamic generic-record API (for formats discovered at run
// time) and through a bound Go struct (for formats the program knows).
package main

import (
	"fmt"
	"log"

	"openmeta"
)

// The message format lives in data, not code: change this document — or
// serve it from a metadata repository — and no recompilation is needed.
const schema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/~pmw/schemas">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`

// Flight mirrors the C structure of the paper's Figure 7 as a Go type.
type Flight struct {
	CntrID string `pbio:"cntrID"`
	Arln   string `pbio:"arln"`
	FltNum int32  `pbio:"fltNum"`
	Equip  string `pbio:"equip"`
	Org    string `pbio:"org"`
	Dest   string `pbio:"dest"`
	Off    [5]uint32
	Eta    []uint32
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Binding: lay the format out for this machine and register it.
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		return err
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, schema)
	if err != nil {
		return err
	}
	format := set.Root()
	fmt.Printf("registered %q: %d fields, %d-byte records, id %s\n",
		format.Name, len(format.Fields), format.Size, format.ID)

	// Marshaling, dynamic flavor: generic records for formats that were
	// discovered at run time.
	wire, err := format.Encode(openmeta.Record{
		"cntrID": "ZTL", "arln": "DL", "fltNum": 1842,
		"equip": "B757", "org": "ATL", "dest": "MCO",
		"off": []uint64{10, 20, 30, 40, 50},
		"eta": []uint64{3600, 3720},
	})
	if err != nil {
		return err
	}
	fmt.Printf("encoded record: %d bytes of NDR\n", len(wire))
	rec, err := format.Decode(wire)
	if err != nil {
		return err
	}
	fmt.Printf("decoded generically: flight %v %v -> %v, %d eta updates\n",
		rec["arln"], rec["fltNum"], rec["dest"], len(rec["eta"].([]uint64)))

	// Marshaling, typed flavor: bind the format to a Go struct once, then
	// encode/decode without per-field lookups.
	binding, err := format.Bind(Flight{})
	if err != nil {
		return err
	}
	out := Flight{CntrID: "ZJX", Arln: "AA", FltNum: 901, Equip: "A320",
		Org: "MIA", Dest: "BOS", Off: [5]uint32{1, 2, 3, 4, 5}, Eta: []uint32{7200}}
	wire2, err := binding.Encode(&out)
	if err != nil {
		return err
	}
	var in Flight
	if err := binding.Decode(wire2, &in); err != nil {
		return err
	}
	fmt.Printf("decoded via binding: flight %s %d %s->%s eta %v\n",
		in.Arln, in.FltNum, in.Org, in.Dest, in.Eta)

	// The same record in the baseline wire formats, for scale.
	xdrBytes, err := openmeta.EncodeXDR(format, rec)
	if err != nil {
		return err
	}
	xmlBytes, err := openmeta.EncodeXMLText(format, rec)
	if err != nil {
		return err
	}
	fmt.Printf("wire sizes: NDR %dB, XDR %dB, XML text %dB (%.1fx)\n",
		len(wire), len(xdrBytes), len(xmlBytes), float64(len(xmlBytes))/float64(len(wire)))
	return nil
}
