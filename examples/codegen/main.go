// Generated message types: flight_gen.go in this directory was produced by
//
//	go run ./cmd/xml2gen -file examples/codegen/flight.xsd -package main \
//	    -const FlightSchemaDocument -register RegisterFlightSchema \
//	    -out examples/codegen/flight_gen.go
//
// from flight.xsd (the paper's Figure 9 schema). This program uses the
// generated registration helper, struct and binding — no hand-written
// marshaling, and the wire format is still driven by the open XML
// metadata. internal/gen's tests keep the checked-in file in sync with the
// generator.
package main

import (
	"fmt"
	"log"

	"openmeta"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		return err
	}
	set, err := RegisterFlightSchema(ctx)
	if err != nil {
		return err
	}
	binding, err := BindASDOffEvent(set)
	if err != nil {
		return err
	}

	out := ASDOffEvent{
		CntrID: "ZTL", Arln: "DL", FltNum: 1842, Equip: "B757",
		Org: "ATL", Dest: "MCO",
		Off: [5]uint64{10, 20, 30, 40, 50}, Eta: []uint64{3600, 3660},
	}
	wire, err := binding.Encode(&out)
	if err != nil {
		return err
	}
	fmt.Printf("encoded generated struct: %d bytes NDR (format id %s)\n",
		len(wire), binding.Format.ID)

	var in ASDOffEvent
	if err := binding.Decode(wire, &in); err != nil {
		return err
	}
	fmt.Printf("decoded: %s%d %s->%s, %d eta updates\n",
		in.Arln, in.FltNum, in.Org, in.Dest, len(in.Eta))

	// Generated types interoperate with generic consumers: the same bytes
	// decode through the discovered format alone.
	rec, err := binding.Format.Decode(wire)
	if err != nil {
		return err
	}
	fmt.Printf("same bytes, generic consumer: cntrID=%v fltNum=%v\n",
		rec["cntrID"], rec["fltNum"])
	return nil
}
