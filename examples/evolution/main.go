// Format evolution without recompilation — the usability claim at the heart
// of the paper. A consumer built against version 1 of a message format
// keeps working, unchanged and unrecompiled, while the producer moves to
// version 2 with new fields:
//
//  1. the metadata repository serves FlightStatus v1; producer and consumer
//     both discover it and exchange records;
//  2. the operator updates the schema document on the repository (adds
//     gate and delayMinutes fields) — a data change, not a code change;
//  3. the producer re-discovers, registers v2 and publishes richer records;
//  4. the old consumer's binding tolerates the added fields (PBIO's
//     restricted format evolution) and keeps extracting what it knows,
//     while a new consumer sees the full v2 content.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"openmeta"
)

const schemaV1 = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="FlightStatus">
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="status" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>`

const schemaV2 = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="FlightStatus">
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="status" type="xsd:string" />
    <xsd:element name="gate" type="xsd:string" />
    <xsd:element name="delayMinutes" type="xsd:integer" />
  </xsd:complexType>
</xsd:schema>`

// statusV1 is the consumer-side type, written when only v1 existed. It is
// never touched again in this program.
type statusV1 struct {
	FltNum int32  `pbio:"fltNum"`
	Dest   string `pbio:"dest"`
	Status string `pbio:"status"`
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Metadata repository.
	repo := openmeta.NewRepository()
	if err := repo.Put("FlightStatus", schemaV1); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: repo.Handler()}
	go srv.Serve(ln) //nolint:errcheck
	defer srv.Close()
	client, err := openmeta.NewDiscoveryClient("http://" + ln.Addr().String())
	if err != nil {
		return err
	}

	discover := func(who string) (*openmeta.Format, error) {
		client.Invalidate("FlightStatus") // always consult the repository
		pctx, err := openmeta.NewContext(openmeta.NativeArch)
		if err != nil {
			return nil, err
		}
		set, err := openmeta.DiscoverAndRegister(context.Background(), client, pctx, "FlightStatus")
		if err != nil {
			return nil, err
		}
		f := set.Root()
		fmt.Printf("%s discovered FlightStatus: %d fields, id %s\n", who, len(f.Fields), f.ID)
		return f, nil
	}

	// Phase 1: both sides speak v1.
	prodV1, err := discover("producer")
	if err != nil {
		return err
	}
	consumerFormat, err := discover("consumer")
	if err != nil {
		return err
	}
	consumerBinding, err := consumerFormat.Bind(statusV1{})
	if err != nil {
		return err
	}
	wire, err := prodV1.Encode(openmeta.Record{
		"fltNum": 1842, "dest": "MCO", "status": "BOARDING",
	})
	if err != nil {
		return err
	}
	var s statusV1
	if err := consumerBinding.Decode(wire, &s); err != nil {
		return err
	}
	fmt.Printf("consumer (v1 binary): flight %d to %s is %s\n\n", s.FltNum, s.Dest, s.Status)

	// Phase 2: the format evolves on the repository. No process restarts,
	// no recompilation — just a new document.
	fmt.Println("-- operator updates the schema document on the repository --")
	if err := repo.Put("FlightStatus", schemaV2); err != nil {
		return err
	}

	prodV2, err := discover("producer (restarted feed)")
	if err != nil {
		return err
	}
	wire2, err := prodV2.Encode(openmeta.Record{
		"fltNum": 1842, "dest": "MCO", "status": "DELAYED",
		"gate": "B23", "delayMinutes": 45,
	})
	if err != nil {
		return err
	}

	// The old consumer receives a v2 record. Its binding is rebuilt against
	// the *incoming* format (delivered as wire metadata in a real system) —
	// its compiled code and struct type are unchanged.
	incoming, err := openmeta.UnmarshalFormatMeta(openmeta.MarshalFormatMeta(prodV2))
	if err != nil {
		return err
	}
	oldBinding, err := incoming.Bind(statusV1{})
	if err != nil {
		return err
	}
	var s2 statusV1
	if err := oldBinding.Decode(wire2, &s2); err != nil {
		return err
	}
	fmt.Printf("old consumer (v1 binary, v2 record): flight %d to %s is %s\n",
		s2.FltNum, s2.Dest, s2.Status)

	// A new, fully dynamic consumer sees everything.
	rec, err := incoming.Decode(wire2)
	if err != nil {
		return err
	}
	fmt.Printf("new consumer (generic): flight %v %v at gate %v, delayed %v minutes\n",
		rec["fltNum"], rec["status"], rec["gate"], rec["delayMinutes"])
	return nil
}
