package openmeta

import (
	"context"

	"openmeta/internal/loadgen"
)

// Load testing, re-exported from internal/loadgen so applications (and
// cmd/omload) drive the open-loop harness through the facade.
type (
	// LoadSpec configures one open-loop load run: publisher/subscriber
	// counts and classes, arrival rate, duration, payload size, chaos
	// profile. The zero value is a usable one-second smoke run.
	LoadSpec = loadgen.Spec
	// LoadReport is the result of a load run: throughput, drop counts,
	// E2E latency percentiles per subscriber class, and the traced
	// stage-share breakdown. Render with Table, Markdown or JSON.
	LoadReport = loadgen.Report
	// LoadLatency is one latency distribution's percentile digest.
	LoadLatency = loadgen.LatencySummary
	// LoadStage is one pipeline stage's share of traced self time.
	LoadStage = loadgen.StageShare
)

// Subscriber class names appearing in LoadReport.Classes.
const (
	LoadClassPlain      = loadgen.ClassPlain
	LoadClassScoped     = loadgen.ClassScoped
	LoadClassConverting = loadgen.ClassConverting
)

// RunLoad executes one load run against an in-process broker (spec.Addr
// empty) or a remote one, measuring true end-to-end latency at the
// subscribers. ctx cancels the run early; the report covers what ran.
func RunLoad(ctx context.Context, spec LoadSpec) (*LoadReport, error) {
	return loadgen.Run(ctx, spec)
}

// LoadChaosProfiles lists the chaos profile names LoadSpec.Chaos accepts.
func LoadChaosProfiles() []string { return loadgen.ChaosProfiles() }
