#!/usr/bin/env bash
# fleetsmoke.sh — boot a real four-process fleet (metaserver, eventbusd,
# ompub, omsub) with -register fleet discovery plus an omcollect scraping it,
# wait until one cross-process trace assembles, and snapshot the /fleet view
# into $FLEET_OUT (default /tmp/fleetsmoke). CI uploads that directory as an
# artifact, so every run leaves behind an inspectable assembled trace.
#
# Usage: scripts/fleetsmoke.sh
# Env:   FLEET_OUT       output directory (default /tmp/fleetsmoke)
#        FLEET_TIMEOUT   seconds to wait for a 3-instance trace (default 30)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${FLEET_OUT:-/tmp/fleetsmoke}"
TIMEOUT="${FLEET_TIMEOUT:-30}"
BIN="$(mktemp -d)"
mkdir -p "$OUT"

META=127.0.0.1:8700
BROKER=127.0.0.1:8701
DBG_BROKER=127.0.0.1:8781
DBG_PUB=127.0.0.1:8782
DBG_SUB=127.0.0.1:8783
COLLECT=127.0.0.1:8790

echo "fleetsmoke: building binaries"
go build -o "$BIN" ./cmd/metaserver ./cmd/eventbusd ./cmd/ompub ./cmd/omsub ./cmd/omcollect

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

"$BIN/metaserver" -addr "$META" -builtin >"$OUT/metaserver.log" 2>&1 &
PIDS+=($!)

# Daemons -register at startup and exit if the registry is unreachable, so
# wait for the metaserver to bind before starting anything that registers.
for _ in $(seq 50); do
    curl -sf "http://$META/instances/" >/dev/null 2>&1 && break
    sleep 0.2
done

"$BIN/eventbusd" -addr "$BROKER" -debug-addr "$DBG_BROKER" -trace-sample 1 \
    -contention-rate 5 \
    -register "http://$META" -instance broker >"$OUT/eventbusd.log" 2>&1 &
PIDS+=($!)

# Wait for the broker's debug listener before pointing clients at it.
for _ in $(seq 50); do
    curl -sf "http://$DBG_BROKER/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

"$BIN/omsub" -broker "$BROKER" -stream faa.asd.departures -trace-sample 1 \
    -debug-addr "$DBG_SUB" -register "http://$META" -instance sub \
    >"$OUT/omsub.log" 2>&1 &
PIDS+=($!)
# Paced so the publisher's debug listener stays up while omcollect scrapes.
"$BIN/ompub" -broker "$BROKER" -demo flights -n 200 -pace 100ms -trace-sample 1 \
    -debug-addr "$DBG_PUB" -register "http://$META" -instance pub \
    >"$OUT/ompub.log" 2>&1 &
PIDS+=($!)
"$BIN/omcollect" -registry "http://$META" -interval 500ms -addr "$COLLECT" \
    >"$OUT/omcollect.log" 2>&1 &
PIDS+=($!)

echo "fleetsmoke: waiting up to ${TIMEOUT}s for a trace spanning pub, broker and sub"
TRACE_ID=""
for _ in $(seq $((TIMEOUT * 2))); do
    TRACE_ID="$(curl -sf "http://$COLLECT/fleet/trace" 2>/dev/null |
        jq -r '[.traces[]? | select((.instances | length) >= 3)][0].trace // empty')" || true
    [ -n "$TRACE_ID" ] && break
    sleep 0.5
done
if [ -z "$TRACE_ID" ]; then
    echo "fleetsmoke: FAIL — no 3-instance trace assembled within ${TIMEOUT}s" >&2
    curl -s "http://$COLLECT/fleet/members" >&2 || true
    exit 1
fi

echo "fleetsmoke: assembled trace $TRACE_ID; snapshotting /fleet into $OUT"
curl -sf "http://$COLLECT/fleet/members" >"$OUT/members.json"
curl -sf "http://$COLLECT/fleet/stats" >"$OUT/stats.json"
curl -sf "http://$COLLECT/fleet/flight?n=200" >"$OUT/flight.json"
curl -sf "http://$COLLECT/fleet/trace" >"$OUT/traces.json"
curl -sf "http://$COLLECT/fleet/trace/$TRACE_ID" >"$OUT/trace-$TRACE_ID.json"

# The snapshot must actually contain the cross-process story: three
# instances, a single root, zero orphans, shares summing to ~100.
jq -e --arg id "$TRACE_ID" '
    (.instances | length) >= 3 and
    (.roots | length) == 1 and
    .orphans == 0 and
    ([.stages[].share_pct] | add | . > 99.9 and . < 100.1)
' "$OUT/trace-$TRACE_ID.json" >/dev/null ||
    {
        echo "fleetsmoke: FAIL — assembled trace malformed:" >&2
        cat "$OUT/trace-$TRACE_ID.json" >&2
        exit 1
    }

echo "fleetsmoke: OK — $(jq -r '.spans' "$OUT/trace-$TRACE_ID.json") spans across $(jq -r '.instances | join(", ")' "$OUT/trace-$TRACE_ID.json")"

# Exemplar resolution: the broker's routing histogram must carry a trace
# exemplar, and /fleet/exemplar/<metric> must resolve it into an assembled
# tree — the metric→trace link, exercised over the real four-process fleet.
echo "fleetsmoke: resolving a trace exemplar for eventbus.route_ns"
EX_OK=""
for _ in $(seq $((TIMEOUT * 2))); do
    if curl -sf "http://$COLLECT/fleet/exemplar/eventbus.route_ns" >"$OUT/exemplar.json" 2>/dev/null; then
        EX_OK=1
        break
    fi
    sleep 0.5
done
if [ -z "$EX_OK" ]; then
    echo "fleetsmoke: FAIL — /fleet/exemplar/eventbus.route_ns never resolved" >&2
    curl -s "http://$COLLECT/fleet/stats?exemplars=1" >&2 || true
    exit 1
fi
jq -e '
    (.exemplar.trace_id | length) == 32 and
    .exemplar.trace_id == .trace.trace and
    .trace.spans > 0 and
    (.trace.instances | length) >= 2 and
    ([.trace.stages[].share_pct] | add | . > 99.9 and . < 100.1)
' "$OUT/exemplar.json" >/dev/null ||
    {
        echo "fleetsmoke: FAIL — resolved exemplar malformed:" >&2
        cat "$OUT/exemplar.json" >&2
        exit 1
    }
echo "fleetsmoke: OK — exemplar $(jq -r '.exemplar.trace_id' "$OUT/exemplar.json") (${OUT}/exemplar.json) resolves across $(jq -r '.trace.instances | join(", ")' "$OUT/exemplar.json")"

# Runtime bridge: every daemon samples runtime/metrics into its registry, so
# the fleet stats must carry instance-labeled runtime gauges and the GC-pause
# histogram family the default alert rules watch.
echo "fleetsmoke: checking instance-labeled runtime metrics in /fleet/stats"
jq -e '
    (.["runtime.goroutines{instance=\"broker\"}"] // 0) > 0 and
    has("runtime.gc.pause_ns{instance=\"broker\"}.count") and
    (.["runtime.heap.alloc_bytes{instance=\"pub\"}"] // 0) > 0
' "$OUT/stats.json" >/dev/null ||
    {
        echo "fleetsmoke: FAIL — /fleet/stats lacks runtime-bridge metrics:" >&2
        jq 'with_entries(select(.key | startswith("runtime.")))' "$OUT/stats.json" >&2 || true
        exit 1
    }
echo "fleetsmoke: OK — runtime bridge visible fleet-wide"

# Contention layer: the broker runs with -contention-rate 5 and a tracked
# routing lock, so /fleet/contention must republish its lock snapshot with
# real acquisitions and the enabled profile rates.
echo "fleetsmoke: checking /fleet/contention for the broker's tracked lock"
curl -sf "http://$COLLECT/fleet/contention" >"$OUT/contention.json"
jq -e '
    .instances.broker.mutex_profile_fraction == 5 and
    ([.instances.broker.locks[] | select(.name == "eventbus.broker_mu")] | length) == 1 and
    ([.instances.broker.locks[] | select(.name == "eventbus.broker_mu")][0].wait.count) > 0
' "$OUT/contention.json" >/dev/null ||
    {
        echo "fleetsmoke: FAIL — /fleet/contention missing broker lock snapshot:" >&2
        cat "$OUT/contention.json" >&2
        exit 1
    }
echo "fleetsmoke: OK — broker_mu contention visible at $(jq -r '[.instances.broker.locks[] | select(.name == "eventbus.broker_mu")][0].wait.count' "$OUT/contention.json") acquisitions"
