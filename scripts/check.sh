#!/bin/sh
# Pre-push checks: vet everything, run the full suite, then re-run the
# concurrency-heavy packages under the race detector.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrent packages)"
go test -race ./internal/obsv ./internal/eventbus ./internal/discovery

echo "check: OK"
