#!/bin/sh
# Benchmark runner: executes the paper-reproduction benchmarks (Table 1-9 at
# the repo root, plus the pbio codec microbenchmarks) with -benchmem and
# writes a machine-readable baseline to BENCH_baseline.json, so a later PR
# can diff its numbers against the committed state of the tree.
#
# Usage:
#   scripts/bench.sh                    # full run, writes BENCH_baseline.json
#   scripts/bench.sh -compare           # run, then diff against the baseline
#   scripts/bench.sh -compare OLD.json  # diff against a specific baseline
#   BENCH_TIME=100x scripts/bench.sh    # CI smoke mode: fixed tiny iteration count
#   BENCH_COUNT=1 scripts/bench.sh      # single iteration per benchmark
#   BENCH_OUT=BENCH_pr4.json scripts/bench.sh   # write results elsewhere
#
# The JSON output is a line-delimited array of objects parsed from `go test
# -bench` output: name, iterations, ns/op, B/op, allocs/op.
#
# -compare re-runs the benchmarks (into BENCH_OUT, a temp file by default)
# and checks ns_per_op of the Table 1 registration and Table 2 wire-format
# codec benchmarks against the baseline: any benchmark more than 25% slower
# (override with BENCH_MAX_REGRESSION) fails the script. Other tables are
# reported but not gated — they exercise whole pipelines whose variance on
# shared CI hardware would make the gate flaky. Compare against a baseline
# produced on the same machine; the committed BENCH_baseline.json documents
# the trajectory, it is not portable across hardware. Requires jq.
set -eu
cd "$(dirname "$0")/.."

COMPARE=0
BASELINE="BENCH_baseline.json"
if [ "${1:-}" = "-compare" ]; then
    COMPARE=1
    [ -n "${2:-}" ] && BASELINE="$2"
    if [ ! -f "$BASELINE" ]; then
        echo "bench: baseline $BASELINE not found" >&2
        exit 1
    fi
    if ! command -v jq >/dev/null 2>&1; then
        echo "bench: -compare needs jq" >&2
        exit 1
    fi
fi

BENCH_TIME="${BENCH_TIME:-1s}"
BENCH_COUNT="${BENCH_COUNT:-1}"
if [ "$COMPARE" = 1 ]; then
    OUT="${BENCH_OUT:-$(mktemp)}"
else
    OUT="${BENCH_OUT:-BENCH_baseline.json}"
fi
TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

echo "== root benchmarks (Table 1-9) + pbio codec benchmarks"
go test -run xxx -bench 'BenchmarkTable|BenchmarkBindingVsGeneric' -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" . | tee "$TXT"
go test -run xxx -bench . -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/pbio/ | tee -a "$TXT"
echo "== self-monitoring sampler benchmark"
go test -run xxx -bench BenchmarkSample -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/histdb/ | tee -a "$TXT"

# Convert `go test -bench` lines into JSON. Benchmark lines look like:
#   BenchmarkTable1Registration/native-8  1000  1234 ns/op  56 B/op  7 allocs/op
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$TXT" > "$OUT"

echo "bench: wrote $(grep -c '"name"' "$OUT") results to $OUT"

[ "$COMPARE" = 1 ] || exit 0

MAX="${BENCH_MAX_REGRESSION:-25}"
echo "== comparing ns/op against $BASELINE (gate: Table1 registration + Table2 codecs, >$MAX% = fail)"
GATE='^BenchmarkTable1Registration|^BenchmarkTable2WireFormats'
REPORT="$(jq -n -r --arg gate "$GATE" --argjson max "$MAX" \
    --slurpfile base "$BASELINE" --slurpfile cur "$OUT" '
  ($base[0] | map({(.name): .ns_per_op}) | add) as $b
  | [ $cur[0][]
      | select($b[.name] != null)
      | . + {base: $b[.name],
             pct: ((.ns_per_op / $b[.name] - 1) * 100),
             gated: (.name | test($gate))} ]
  | (.[] | [ (if .gated and .pct > $max then "REGRESSED"
              elif .gated then "ok"
              else "info" end),
             .name, "\(.base) -> \(.ns_per_op) ns/op",
             "\(.pct | floor)%" ] | @tsv),
    "gated \(map(select(.gated)) | length) of \(length) shared benchmarks",
    (if any(.gated and .pct > $max) then "RESULT: FAIL" else "RESULT: PASS" end)
')"
printf '%s\n' "$REPORT" | column -t -s "$(printf '\t')" 2>/dev/null || printf '%s\n' "$REPORT"
case "$REPORT" in
*"RESULT: FAIL"*)
    echo "bench: ns/op regression over $MAX% against $BASELINE" >&2
    exit 1
    ;;
esac

# Absolute gate on the self-monitoring sampler: histdb.Sample walks the whole
# registry on every tick, so its cost is a standing tax on any process that
# enables -history-interval. Unlike the relative gates above this is a hard
# ns/op budget (override with HISTDB_BUDGET_NS), generous enough to hold on
# shared CI hardware while still catching an accidental O(n^2) rebuild.
BUDGET="${HISTDB_BUDGET_NS:-1000000}"
echo "== histdb sampling budget (BenchmarkSample <= $BUDGET ns/op)"
HIST_NS="$(jq -r '[.[] | select(.name | test("^BenchmarkSample")) | .ns_per_op] | max // empty' "$OUT")"
if [ -z "$HIST_NS" ]; then
    echo "bench: BenchmarkSample missing from $OUT" >&2
    exit 1
fi
if [ "$(printf '%.0f' "$HIST_NS")" -gt "$BUDGET" ]; then
    echo "bench: histdb BenchmarkSample at $HIST_NS ns/op exceeds budget $BUDGET" >&2
    exit 1
fi
echo "bench: histdb sampler at $HIST_NS ns/op (budget $BUDGET)"
