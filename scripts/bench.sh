#!/bin/sh
# Benchmark runner: executes the paper-reproduction benchmarks (Table 1-9 at
# the repo root, plus the pbio codec microbenchmarks) with -benchmem and
# writes a machine-readable baseline to BENCH_baseline.json, so a later PR
# can diff its numbers against the committed state of the tree.
#
# Usage:
#   scripts/bench.sh                 # full run, ~minutes, 3 iterations each
#   BENCH_TIME=100x scripts/bench.sh # CI smoke mode: fixed tiny iteration count
#   BENCH_COUNT=1 scripts/bench.sh   # single iteration per benchmark
#
# The JSON output is a line-delimited array of objects parsed from `go test
# -bench` output: name, iterations, ns/op, B/op, allocs/op.
set -eu
cd "$(dirname "$0")/.."

BENCH_TIME="${BENCH_TIME:-1s}"
BENCH_COUNT="${BENCH_COUNT:-1}"
OUT="${BENCH_OUT:-BENCH_baseline.json}"
TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

echo "== root benchmarks (Table 1-9) + pbio codec benchmarks"
go test -run xxx -bench 'BenchmarkTable|BenchmarkBindingVsGeneric' -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" . | tee "$TXT"
go test -run xxx -bench . -benchmem \
    -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/pbio/ | tee -a "$TXT"

# Convert `go test -bench` lines into JSON. Benchmark lines look like:
#   BenchmarkTable1Registration/native-8  1000  1234 ns/op  56 B/op  7 allocs/op
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n]" }
' "$TXT" > "$OUT"

echo "bench: wrote $(grep -c '"name"' "$OUT") results to $OUT"
