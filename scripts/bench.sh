#!/bin/sh
# Benchmark runner: executes the paper-reproduction benchmarks (Table 1-9 at
# the repo root, plus the pbio codec microbenchmarks) with -benchmem and
# writes a machine-readable baseline to BENCH_baseline.json, so a later PR
# can diff its numbers against the committed state of the tree.
#
# Usage:
#   scripts/bench.sh                    # full run, writes BENCH_baseline.json
#   scripts/bench.sh -compare           # run, then diff against the baseline
#   scripts/bench.sh -compare OLD.json  # diff against a specific baseline
#   scripts/bench.sh -compare-only CUR.json BASE.json
#                                       # no benchmarks: just run the gate on
#                                       # two existing result files (tests/CI)
#   BENCH_TIME=100x scripts/bench.sh    # CI smoke mode: fixed tiny iteration count
#   BENCH_COUNT=1 scripts/bench.sh      # single iteration per benchmark
#   BENCH_OUT=BENCH_pr4.json scripts/bench.sh   # write results elsewhere
#   OMLOAD_SKIP=1 scripts/bench.sh      # skip the omload E2E smoke
#
# The JSON output is a line-delimited array of objects parsed from `go test
# -bench` output: name, iterations, ns/op, B/op, allocs/op. The omload smoke
# folds its E2E latency percentiles into the same file as pseudo-benchmarks
# (omload/e2e_p50 .. omload/e2e_p999, value in ns).
#
# -compare re-runs the benchmarks (into BENCH_OUT, a temp file by default)
# and checks ns_per_op of the Table 1 registration and Table 2 wire-format
# codec benchmarks, plus the omload E2E p99, against the baseline: any gated
# benchmark more than 25% slower (override with BENCH_MAX_REGRESSION) fails
# the script, and a gated benchmark MISSING from the baseline fails loudly
# instead of silently passing. Other tables are reported but not gated — they
# exercise whole pipelines whose variance on shared CI hardware would make
# the gate flaky. Compare against a baseline produced on the same machine;
# the committed BENCH_baseline.json documents the trajectory, it is not
# portable across hardware. Requires jq.
set -eu
cd "$(dirname "$0")/.."

MODE=run
BASELINE="BENCH_baseline.json"
case "${1:-}" in
-compare)
    MODE=compare
    [ -n "${2:-}" ] && BASELINE="$2"
    ;;
-compare-only)
    MODE=compare-only
    if [ -z "${2:-}" ] || [ -z "${3:-}" ]; then
        echo "usage: bench.sh -compare-only CURRENT.json BASELINE.json" >&2
        exit 2
    fi
    OUT="$2"
    BASELINE="$3"
    if [ ! -f "$OUT" ]; then
        echo "bench: current results $OUT not found" >&2
        exit 1
    fi
    ;;
esac
if [ "$MODE" != run ]; then
    if [ ! -f "$BASELINE" ]; then
        echo "bench: baseline $BASELINE not found" >&2
        exit 1
    fi
    if ! command -v jq >/dev/null 2>&1; then
        echo "bench: compare modes need jq" >&2
        exit 1
    fi
fi

if [ "$MODE" != compare-only ]; then
    BENCH_TIME="${BENCH_TIME:-1s}"
    BENCH_COUNT="${BENCH_COUNT:-1}"
    if [ "$MODE" = compare ]; then
        OUT="${BENCH_OUT:-$(mktemp)}"
    else
        OUT="${BENCH_OUT:-BENCH_baseline.json}"
    fi
    TXT="$(mktemp)"
    trap 'rm -f "$TXT"' EXIT

    echo "== root benchmarks (Table 1-9) + pbio codec benchmarks"
    go test -run xxx -bench 'BenchmarkTable|BenchmarkBindingVsGeneric' -benchmem \
        -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" . | tee "$TXT"
    go test -run xxx -bench . -benchmem \
        -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/pbio/ | tee -a "$TXT"
    echo "== self-monitoring sampler benchmark"
    go test -run xxx -bench BenchmarkSample -benchmem \
        -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/histdb/ | tee -a "$TXT"
    echo "== exemplar hot-path benchmark"
    go test -run xxx -bench BenchmarkObserveExemplar -benchmem \
        -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/obsv/ | tee -a "$TXT"
    echo "== tracked-mutex fast-path benchmark"
    go test -run xxx -bench BenchmarkTrackedMutex -benchmem \
        -benchtime "$BENCH_TIME" -count "$BENCH_COUNT" ./internal/obsv/ | tee -a "$TXT"

    # Convert `go test -bench` lines into JSON. Benchmark lines look like:
    #   BenchmarkTable1Registration/native-8  1000  1234 ns/op  56 B/op  7 allocs/op
    awk '
    BEGIN { print "["; first = 1 }
    /^Benchmark/ {
        name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
        for (i = 3; i < NF; i++) {
            if ($(i+1) == "ns/op")     ns = $i
            if ($(i+1) == "B/op")      bytes = $i
            if ($(i+1) == "allocs/op") allocs = $i
        }
        if (ns == "") next
        if (!first) printf ",\n"
        first = 0
        printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END { print "\n]" }
    ' "$TXT" > "$OUT"

    # omload smoke: a short open-loop run against an in-process broker, its
    # E2E percentiles folded into the results as pseudo-benchmarks so the p99
    # rides the same compare gate as the ns/op numbers.
    if [ "${OMLOAD_SKIP:-0}" != 1 ]; then
        if command -v jq >/dev/null 2>&1; then
            echo "== omload smoke (open-loop E2E latency)"
            OMJSON="${OMLOAD_OUT:-$(mktemp)}"
            go run ./cmd/omload -duration "${OMLOAD_DURATION:-2s}" \
                -rate "${OMLOAD_RATE:-2000}" -sample 8 -format json > "$OMJSON"
            TMP="$(mktemp)"
            jq -s '.[0] + (.[1].latency_ns | [
                {name: "omload/e2e_p50",  iterations: .count, ns_per_op: .p50},
                {name: "omload/e2e_p95",  iterations: .count, ns_per_op: .p95},
                {name: "omload/e2e_p99",  iterations: .count, ns_per_op: .p99},
                {name: "omload/e2e_p999", iterations: .count, ns_per_op: .p999}
            ])' "$OUT" "$OMJSON" > "$TMP" && mv "$TMP" "$OUT"
            jq -r '.latency_ns | "omload: e2e p50 \(.p50)ns  p95 \(.p95)ns  p99 \(.p99)ns  p999 \(.p999)ns  (\(.count) samples)"' "$OMJSON"
            [ -n "${OMLOAD_OUT:-}" ] || rm -f "$OMJSON"
        else
            echo "bench: jq not found, skipping omload smoke" >&2
        fi
    fi

    echo "bench: wrote $(grep -c '"name"' "$OUT") results to $OUT"
fi

[ "$MODE" = run ] && exit 0

MAX="${BENCH_MAX_REGRESSION:-25}"
# The omload E2E p99 is a tail statistic of a short live run, far noisier
# than ns/op microbenchmarks; OMLOAD_MAX_REGRESSION loosens its threshold
# independently (CI sets it high to avoid flaking on shared runners — the
# gate logic itself is pinned by bench_gate_test.go against fixtures).
OMAX="${OMLOAD_MAX_REGRESSION:-$MAX}"
echo "== comparing ns/op against $BASELINE (gate: Table1 registration + Table2 codecs >$MAX%, omload p99 >$OMAX% = fail)"
GATE='^BenchmarkTable1Registration|^BenchmarkTable2WireFormats|^omload/e2e_p99$'
REPORT="$(jq -n -r --arg gate "$GATE" --argjson max "$MAX" --argjson omax "$OMAX" \
    --slurpfile base "$BASELINE" --slurpfile cur "$OUT" '
  ($base[0] | map({(.name): .ns_per_op}) | add) as $b
  | [ $cur[0][]
      | . + {base: $b[.name], gated: (.name | test($gate))}
      | . + {max: (if (.name | startswith("omload/")) then $omax else $max end)}
      | . + {pct: (if .base != null and .base > 0
                   then ((.ns_per_op / .base - 1) * 100) else null end)} ]
  | (.[] | [ (if .gated and .base == null then "MISSING"
              elif .gated and .pct != null and .pct > .max then "REGRESSED"
              elif .gated then "ok"
              elif .base == null then "new"
              else "info" end),
             .name,
             (if .base != null then "\(.base) -> \(.ns_per_op) ns/op"
              else "(not in baseline) \(.ns_per_op) ns/op" end),
             (if .pct != null then "\(.pct | floor)%" else "-" end) ] | @tsv),
    "gated \(map(select(.gated)) | length) of \(length) current benchmarks",
    (if any(.gated and .base == null)
     then "RESULT: FAIL (gated benchmark missing from baseline)"
     elif any(.gated and .pct != null and .pct > .max)
     then "RESULT: FAIL (ns/op regression over threshold)"
     else "RESULT: PASS" end)
')"
printf '%s\n' "$REPORT" | column -t -s "$(printf '\t')" 2>/dev/null || printf '%s\n' "$REPORT"
case "$REPORT" in
*"RESULT: FAIL (gated benchmark missing from baseline)"*)
    echo "bench: baseline $BASELINE is missing a gated benchmark present in the current run" >&2
    echo "bench: regenerate the baseline (scripts/bench.sh) so the gate covers it" >&2
    exit 1
    ;;
*"RESULT: FAIL"*)
    echo "bench: ns/op regression over $MAX% against $BASELINE" >&2
    exit 1
    ;;
esac

# Absolute gate on the self-monitoring sampler: histdb.Sample walks the whole
# registry on every tick, so its cost is a standing tax on any process that
# enables -history-interval. Unlike the relative gates above this is a hard
# ns/op budget (override with HISTDB_BUDGET_NS), generous enough to hold on
# shared CI hardware while still catching an accidental O(n^2) rebuild.
BUDGET="${HISTDB_BUDGET_NS:-1000000}"
echo "== histdb sampling budget (BenchmarkSample <= $BUDGET ns/op)"
HIST_NS="$(jq -r '[.[] | select(.name | test("^BenchmarkSample")) | .ns_per_op] | max // empty' "$OUT")"
if [ -z "$HIST_NS" ]; then
    if [ "$MODE" = compare-only ]; then
        echo "bench: BenchmarkSample not in $OUT, skipping budget check (compare-only)"
        exit 0
    fi
    echo "bench: BenchmarkSample missing from $OUT" >&2
    exit 1
fi
if [ "$(printf '%.0f' "$HIST_NS")" -gt "$BUDGET" ]; then
    echo "bench: histdb BenchmarkSample at $HIST_NS ns/op exceeds budget $BUDGET" >&2
    exit 1
fi
echo "bench: histdb sampler at $HIST_NS ns/op (budget $BUDGET)"

# Absolute gate on exemplar recording: ObserveExemplar sits on the encode /
# decode / route hot paths, so like the sampler it gets a hard ns/op budget
# (override with EXEMPLAR_BUDGET_NS) rather than a relative gate — the number
# must stay in tens-of-nanoseconds territory, not merely "no worse than last
# PR". The allocation guarantee (0 allocs/op steady state) is enforced by
# TestExemplarHotPathAllocs; this guards the latency side.
EX_BUDGET="${EXEMPLAR_BUDGET_NS:-2000}"
echo "== exemplar recording budget (BenchmarkObserveExemplar <= $EX_BUDGET ns/op)"
EX_NS="$(jq -r '[.[] | select(.name | test("^BenchmarkObserveExemplar")) | .ns_per_op] | max // empty' "$OUT")"
if [ -z "$EX_NS" ]; then
    if [ "$MODE" = compare-only ]; then
        echo "bench: BenchmarkObserveExemplar not in $OUT, skipping budget check (compare-only)"
        exit 0
    fi
    echo "bench: BenchmarkObserveExemplar missing from $OUT" >&2
    exit 1
fi
if [ "$(printf '%.0f' "$EX_NS")" -gt "$EX_BUDGET" ]; then
    echo "bench: obsv BenchmarkObserveExemplar at $EX_NS ns/op exceeds budget $EX_BUDGET" >&2
    exit 1
fi
echo "bench: exemplar recording at $EX_NS ns/op (budget $EX_BUDGET)"

# Absolute gate on the tracked lock: TrackedMutex wraps the broker's routing
# mutex permanently, so its uncontended Lock/Unlock pair (two timestamps, two
# histogram observations) gets a hard ns/op budget like the other always-on
# hot paths (override with TRACKEDMUTEX_BUDGET_NS). The zero-allocation
# guarantee is enforced separately by TestTrackedMutexAllocs.
TM_BUDGET="${TRACKEDMUTEX_BUDGET_NS:-2000}"
echo "== tracked-mutex budget (BenchmarkTrackedMutex <= $TM_BUDGET ns/op)"
TM_NS="$(jq -r '[.[] | select(.name | test("^BenchmarkTrackedMutex")) | .ns_per_op] | max // empty' "$OUT")"
if [ -z "$TM_NS" ]; then
    if [ "$MODE" = compare-only ]; then
        echo "bench: BenchmarkTrackedMutex not in $OUT, skipping budget check (compare-only)"
        exit 0
    fi
    echo "bench: BenchmarkTrackedMutex missing from $OUT" >&2
    exit 1
fi
if [ "$(printf '%.0f' "$TM_NS")" -gt "$TM_BUDGET" ]; then
    echo "bench: obsv BenchmarkTrackedMutex at $TM_NS ns/op exceeds budget $TM_BUDGET" >&2
    exit 1
fi
echo "bench: tracked mutex at $TM_NS ns/op (budget $TM_BUDGET)"
