#!/bin/sh
# Performance trajectory keeper: BENCH_trajectory.json is the committed,
# append-only history of omload E2E latency across PRs — the repo's defended
# perf numbers over time, in the style of buildpacks' dev/bench history.
#
# Usage:
#   scripts/trajectory.sh append RUN.json   # append one entry from an omload
#                                           # JSON report (omload -format json)
#   scripts/trajectory.sh validate          # check the committed trajectory
#
#   TRAJECTORY=path scripts/trajectory.sh … # operate on another file
#
# Schema (see EXPERIMENTS.md "Load testing"): a JSON array of entries
#   {
#     "timestamp": "2026-08-08T12:00:00Z",   UTC ISO-8601, non-decreasing
#     "commit":    "abc1234",                short git hash ("dirty" suffix ok)
#     "tool":      "omload",
#     "benches": [ {"name": "e2e_p99", "value": 812345, "unit": "ns"}, … ]
#   }
# validate fails on malformed entries or timestamps that go backwards, so a
# bad merge of the history is caught in CI rather than silently corrupting
# the trajectory. Requires jq.
set -eu
cd "$(dirname "$0")/.."

TRAJ="${TRAJECTORY:-BENCH_trajectory.json}"

if ! command -v jq >/dev/null 2>&1; then
    echo "trajectory: needs jq" >&2
    exit 1
fi

validate() {
    if [ ! -f "$TRAJ" ]; then
        echo "trajectory: $TRAJ not found" >&2
        return 1
    fi
    jq -r '
      if type != "array" then error("top level is not an array") else . end
      | if length == 0 then error("trajectory is empty") else . end
      | to_entries[]
      | .key as $i | .value
      | if (.timestamp | type) != "string" then error("entry \($i): missing timestamp") else . end
      | if (try (.timestamp | fromdateiso8601) catch null) == null
          then error("entry \($i): timestamp \(.timestamp) is not ISO-8601") else . end
      | if (.commit | type) != "string" or .commit == "" then error("entry \($i): missing commit") else . end
      | if (.tool | type) != "string" then error("entry \($i): missing tool") else . end
      | if (.benches | type) != "array" or (.benches | length) == 0
          then error("entry \($i): missing benches") else . end
      | .benches[]
      | if (.name | type) != "string" or (.value | type) != "number" or (.unit | type) != "string"
          then error("entry \($i): bench needs name/value/unit: \(.)") else empty end
    ' "$TRAJ" >/dev/null || { echo "trajectory: $TRAJ is malformed" >&2; return 1; }
    jq -e '
      [.[].timestamp | fromdateiso8601] as $ts
      | all(range(1; $ts | length); $ts[.] >= $ts[. - 1])
    ' "$TRAJ" >/dev/null || {
        echo "trajectory: timestamps in $TRAJ are not non-decreasing" >&2
        return 1
    }
    echo "trajectory: $TRAJ ok ($(jq length "$TRAJ") entries)"
}

append() {
    RUN="$1"
    if [ ! -f "$RUN" ]; then
        echo "trajectory: run report $RUN not found" >&2
        exit 1
    fi
    SCHEMA="$(jq -r '.schema // empty' "$RUN")"
    if [ "$SCHEMA" != "omload/v1" ]; then
        echo "trajectory: $RUN is not an omload/v1 report (schema: ${SCHEMA:-none})" >&2
        exit 1
    fi
    TS="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
    if ! git diff --quiet HEAD 2>/dev/null; then
        COMMIT="$COMMIT-dirty"
    fi
    [ -f "$TRAJ" ] || echo '[]' > "$TRAJ"
    TMP="$(mktemp)"
    jq --arg ts "$TS" --arg commit "$COMMIT" --slurpfile run "$RUN" '
      . + [ $run[0] | {
        timestamp: $ts,
        commit: $commit,
        tool: "omload",
        benches: ([
          {name: "e2e_p50",  value: .latency_ns.p50,  unit: "ns"},
          {name: "e2e_p95",  value: .latency_ns.p95,  unit: "ns"},
          {name: "e2e_p99",  value: .latency_ns.p99,  unit: "ns"},
          {name: "e2e_p999", value: .latency_ns.p999, unit: "ns"},
          {name: "records_per_sec", value: .records_per_sec, unit: "rec/s"},
          {name: "delivered", value: .delivered, unit: "records"},
          {name: "dropped",   value: .dropped,   unit: "records"}
        ])
      } ]
    ' "$TRAJ" > "$TMP" && mv "$TMP" "$TRAJ"
    validate
}

case "${1:-}" in
append)
    if [ -z "${2:-}" ]; then
        echo "usage: trajectory.sh append RUN.json" >&2
        exit 2
    fi
    append "$2"
    ;;
validate)
    validate
    ;;
*)
    echo "usage: trajectory.sh {append RUN.json | validate}" >&2
    exit 2
    ;;
esac
