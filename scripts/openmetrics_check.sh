#!/usr/bin/env bash
# openmetrics_check.sh — golden-output validity check for the /metrics
# OpenMetrics exposition. Boots a real eventbusd, drives traced traffic
# through it with ompub, then fetches /metrics with content negotiation and
# validates the exemplar grammar line by line:
#
#   - the negotiated Content-Type is application/openmetrics-text
#   - the exposition ends with the mandatory "# EOF" terminator
#   - every exemplar annotation (" # {...}") sits on a _bucket series and
#     nowhere else — exemplars on counters/gauges are invalid OpenMetrics
#   - each exemplar labelset is exactly {trace_id="<32 lowercase hex>"}
#     followed by a value and a <sec>.<9-digit nanos> timestamp, so label
#     escaping can never be wrong for the IDs we emit
#   - at least one exemplar line exists (the traffic was traced, so the
#     broker's routing histogram must carry one)
#   - the plain (Prometheus text) negotiation emits neither exemplars nor
#     the "# EOF" terminator
#
# Usage: scripts/openmetrics_check.sh
# Env:   OM_OUT  file to keep the exposition in (default: temp, removed)
set -euo pipefail
cd "$(dirname "$0")/.."

BROKER=127.0.0.1:8711
DBG=127.0.0.1:8791
BIN="$(mktemp -d)"
OUT="${OM_OUT:-$BIN/metrics.om}"

echo "openmetrics: building binaries"
go build -o "$BIN" ./cmd/eventbusd ./cmd/ompub

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$BIN"
}
trap cleanup EXIT

"$BIN/eventbusd" -addr "$BROKER" -debug-addr "$DBG" -trace-sample 1 &
PIDS+=($!)
for _ in $(seq 50); do
    curl -sf "http://$DBG/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

echo "openmetrics: publishing traced demo traffic"
"$BIN/ompub" -broker "$BROKER" -demo flights -n 50 -trace-sample 1 >/dev/null

HDR="$BIN/headers"
curl -sf -D "$HDR" -H 'Accept: application/openmetrics-text' "http://$DBG/metrics" >"$OUT"

grep -qi '^content-type: application/openmetrics-text' "$HDR" || {
    echo "openmetrics: FAIL — negotiation did not switch Content-Type:" >&2
    cat "$HDR" >&2
    exit 1
}

FAIL=0
if [ "$(tail -n 1 "$OUT")" != "# EOF" ]; then
    echo "openmetrics: missing # EOF terminator (last line: $(tail -n 1 "$OUT"))" >&2
    FAIL=1
fi
EX_TOTAL="$(grep -c ' # {' "$OUT" || true)"
if [ "$EX_TOTAL" -eq 0 ]; then
    echo "openmetrics: no exemplar lines despite traced traffic" >&2
    FAIL=1
fi
# Every exemplar annotation must sit on a _bucket series and carry exactly
# {trace_id="<32 hex>"} <value> <sec>.<9-digit nanos>.
GRAMMAR='^[A-Za-z_:][A-Za-z0-9_:]*_bucket\{[^}]*\} [0-9]+ # \{trace_id="[0-9a-f]{32}"\} -?[0-9]+ [0-9]+\.[0-9]{9}$'
if grep ' # {' "$OUT" | grep -Ev "$GRAMMAR" >&2; then
    echo "openmetrics: malformed exemplar line(s) above" >&2
    FAIL=1
fi
[ "$FAIL" -eq 0 ] || { echo "openmetrics: FAIL — invalid exposition in $OUT" >&2; exit 1; }

PLAIN="$BIN/metrics.prom"
curl -sf "http://$DBG/metrics" >"$PLAIN"
if grep -q 'trace_id=' "$PLAIN" || grep -q '^# EOF$' "$PLAIN"; then
    echo "openmetrics: FAIL — plain Prometheus negotiation leaked OpenMetrics syntax" >&2
    exit 1
fi

echo "openmetrics: OK — $(grep -c ' # {' "$OUT") exemplar line(s), valid grammar, # EOF terminated"
