package openmeta

import (
	"openmeta/internal/core"
	"openmeta/internal/dcg"
	"openmeta/internal/discovery"
	"openmeta/internal/eventbus"
	"openmeta/internal/pbio"
	"openmeta/internal/retry"
)

// Sentinel errors. Every error returned through the facade wraps (with %w)
// one of these when the failure matches, so callers branch with errors.Is
// instead of string matching:
//
//	if errors.Is(err, openmeta.ErrUnknownFormat) { ... }
//
// The values are shared with the internal packages, so errors.Is works on
// errors surfaced from any layer.
var (
	// ErrUnknownFormat reports a reference to a format name that is not
	// registered in the context (e.g. a nested field's type).
	ErrUnknownFormat = pbio.ErrUnknownFormat
	// ErrDuplicateField reports a format declaring the same field twice.
	ErrDuplicateField = pbio.ErrDuplicateField
	// ErrBadFieldSize reports a field whose declared size does not match its
	// type on the target architecture.
	ErrBadFieldSize = pbio.ErrBadFieldSize
	// ErrFieldOverlap reports a field layout that overlaps or violates
	// alignment.
	ErrFieldOverlap = pbio.ErrFieldOverlap
	// ErrBadMetadata reports malformed format metadata received from a peer.
	ErrBadMetadata = pbio.ErrBadMeta
	// ErrMissingField reports a record value missing a required field.
	ErrMissingField = pbio.ErrMissingField
	// ErrBadValue reports a record value whose type does not fit its field.
	ErrBadValue = pbio.ErrBadValue
	// ErrTruncated reports an encoded record shorter than its format's
	// fixed region.
	ErrTruncated = pbio.ErrTruncated
	// ErrEmptySubset reports a DeriveSubset call that keeps no fields.
	ErrEmptySubset = pbio.ErrEmptySubset

	// ErrFieldMismatch reports two formats whose same-named fields are
	// incompatible, so no conversion plan exists between them.
	ErrFieldMismatch = dcg.ErrIncompatible

	// ErrSlowSubscriber reports a subscriber whose outbound queue stalled
	// past the broker's must-send deadline; the broker disconnects it.
	ErrSlowSubscriber = eventbus.ErrSlowSubscriber
	// ErrBusClosed reports an operation on a closed backbone connection.
	ErrBusClosed = eventbus.ErrClosed
	// ErrBroker reports an error frame the broker sent in reply to a bad
	// request (unknown stream, malformed payload). The returned error is an
	// *eventbus.BrokerError carrying the broker's message.
	ErrBroker = eventbus.ErrBroker

	// ErrSchemaNotFound reports a schema name no discovery source knows.
	ErrSchemaNotFound = discovery.ErrNotFound
	// ErrStale reports a discovery cache entry too old to serve even under
	// the client's stale-serve window (see WithStaleServe); the error also
	// wraps the fetch failure that forced the degraded path.
	ErrStale = discovery.ErrStale

	// ErrRetriesExhausted reports an operation that kept failing until its
	// retry policy ran out of attempts; the error wraps the final attempt's
	// failure.
	ErrRetriesExhausted = retry.ErrExhausted

	// ErrInvalidRecord reports a record violating its schema's facet
	// constraints (enumerations, ranges, lengths).
	ErrInvalidRecord = core.ErrInvalidRecord
	// ErrUnsupportedSchema reports an XML Schema construct outside the
	// binary-compatibility model xml2wire supports.
	ErrUnsupportedSchema = core.ErrUnsupportedSchema
	// ErrNoCandidates reports a Match call with no candidate formats.
	ErrNoCandidates = core.ErrNoCandidates
)
