package openmeta_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"openmeta"
	"openmeta/internal/airline"
	"openmeta/internal/testutil"
)

// publishUntilReceived publishes rec repeatedly until sub receives an event
// — subscription registration at the broker races the first publish, so a
// single publish can be delivered to no one.
func publishUntilReceived(t *testing.T, pub *openmeta.Publisher, sub *openmeta.Subscriber, f *openmeta.Format, rec openmeta.Record) {
	t.Helper()
	got := make(chan error, 1)
	go func() {
		_, err := sub.Next()
		got <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := pub.PublishRecord(airline.FlightStream, f, rec); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-got:
			if err != nil {
				t.Fatal(err)
			}
			return
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no event received after 10s of publishing")
		}
	}
}

// TestStatsQuickstartFlow runs the README quickstart plus a broker round
// trip and checks the process-wide Stats snapshot moved for every layer the
// flow touched. The default registry is shared across tests in the binary,
// so all assertions are on before/after deltas.
func TestStatsQuickstartFlow(t *testing.T) {
	before := openmeta.Stats()

	ctx, err := openmeta.New()
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, airline.FlightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := set.Lookup("ASDOffEvent")
	if !ok {
		t.Fatal("format not registered")
	}
	rec := openmeta.Record{
		"cntrID": "ZTL", "fltNum": 1842, "dest": "MCO",
		"off": []uint64{1, 2, 3, 4, 5}, "eta": []uint64{100},
	}
	wire, err := f.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Decode(wire); err != nil {
		t.Fatal(err)
	}

	broker, err := openmeta.ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	subCtx, err := openmeta.New()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := openmeta.DialSubscriber(broker.Addr().String(), subCtx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(airline.FlightStream); err != nil {
		t.Fatal(err)
	}
	pub, err := openmeta.DialPublisher(broker.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	publishUntilReceived(t, pub, sub, f, rec)

	delta := openmeta.StatsDelta(before, openmeta.Stats())
	for _, key := range []string{
		"pbio.formats.registered",
		"pbio.encode.calls",
		"pbio.encode.bytes",
		"pbio.decode.calls",
		"pbio.meta.marshals",
		"eventbus.published",
		"eventbus.delivered",
	} {
		if delta[key] <= 0 {
			t.Errorf("delta[%q] = %d, want > 0 (delta: %v)", key, delta[key], delta)
		}
	}
}

// TestStatsHandlerServesJSON checks the HTTP snapshot is valid JSON and
// carries the documented keys even before any traffic (instruments are
// created zero-valued at package init).
func TestStatsHandlerServesJSON(t *testing.T) {
	srv := httptest.NewServer(openmeta.StatsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{
		"eventbus.delivered",
		"dcg.plan_cache.hits",
		"pbio.formats.registered",
		"discovery.fetches",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats JSON missing key %q", key)
		}
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(openmeta.DebugHandler())
	defer srv.Close()
	for _, path := range []string{"/stats", "/debug/stats", "/debug/vars", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestWithObserverIsolation checks a private Observer captures a context's
// traffic without polluting other registries.
func TestWithObserverIsolation(t *testing.T) {
	obs := openmeta.NewObserver()
	ctx, err := openmeta.New(openmeta.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, airline.FlightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := set.Lookup("ASDOffEvent")
	if _, err := f.Encode(openmeta.Record{
		"cntrID": "ZTL", "fltNum": 7, "dest": "ATL",
		"off": []uint64{1}, "eta": []uint64{2},
	}); err != nil {
		t.Fatal(err)
	}
	snap := obs.Snapshot()
	if snap["pbio.formats.registered"] <= 0 {
		t.Errorf("private observer pbio.formats.registered = %d, want > 0", snap["pbio.formats.registered"])
	}
	if snap["pbio.encode.calls"] != 1 {
		t.Errorf("private observer pbio.encode.calls = %d, want 1", snap["pbio.encode.calls"])
	}
}

func TestBrokerOptionsAndStats(t *testing.T) {
	obs := openmeta.NewObserver()
	broker, err := openmeta.ListenBroker("127.0.0.1:0",
		openmeta.WithQueueDepth(8),
		openmeta.WithBrokerObserver(obs),
		openmeta.WithPlanCache(openmeta.NewPlanCache()),
		openmeta.WithBrokerLogger(func(string, ...interface{}) {}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	ctx, err := openmeta.New()
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(ctx, airline.FlightSchema)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := set.Lookup("ASDOffEvent")
	subCtx, _ := openmeta.New()
	sub, err := openmeta.DialSubscriber(broker.Addr().String(), subCtx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(airline.FlightStream); err != nil {
		t.Fatal(err)
	}
	pub, err := openmeta.DialPublisher(broker.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	rec := openmeta.Record{
		"cntrID": "ZOB", "fltNum": 12, "dest": "ORD",
		"off": []uint64{9}, "eta": []uint64{10},
	}
	publishUntilReceived(t, pub, sub, f, rec)

	var st openmeta.BrokerStats
	testutil.Poll(2*time.Second, func() bool {
		st = broker.Stats()
		return st.Delivered >= 1
	})
	if st.Published < 1 || st.Delivered < 1 {
		t.Errorf("broker stats = %+v, want published/delivered >= 1", st)
	}
	if st.Streams < 1 || st.Subscribers < 1 {
		t.Errorf("broker stats = %+v, want streams/subscribers >= 1", st)
	}
	snap := obs.Snapshot()
	if snap["eventbus.delivered"] < 1 {
		t.Errorf("private broker observer eventbus.delivered = %d, want >= 1", snap["eventbus.delivered"])
	}
	if snap["eventbus.stream."+airline.FlightStream+".published"] < 1 {
		t.Errorf("missing per-stream published counter: %v", snap)
	}
}

func TestPlanCacheOptions(t *testing.T) {
	obs := openmeta.NewObserver()
	cache := openmeta.NewPlanCache(
		openmeta.WithPlanCacheLimit(1),
		openmeta.WithPlanCacheObserver(obs),
	)

	mk := func(arch *openmeta.Arch) *openmeta.Format {
		ctx, err := openmeta.New(openmeta.WithArch(arch))
		if err != nil {
			t.Fatal(err)
		}
		f, err := openmeta.RegisterSpecs(ctx, "P", []openmeta.FieldSpec{
			{Name: "a", Kind: openmeta.Int, CType: openmeta.CInt},
			{Name: "b", Kind: openmeta.Float, CType: openmeta.CDouble},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	src, d1, d2 := mk(openmeta.ArchSparc), mk(openmeta.ArchX86_64), mk(openmeta.ArchX86)

	if _, err := cache.Plan(src, d1); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Plan(src, d1); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := cache.Plan(src, d2); err != nil { // miss; evicts first pair
		t.Fatal(err)
	}
	snap := obs.Snapshot()
	if snap["dcg.plan_cache.hits"] != 1 {
		t.Errorf("hits = %d, want 1", snap["dcg.plan_cache.hits"])
	}
	if snap["dcg.plan_cache.misses"] != 2 {
		t.Errorf("misses = %d, want 2", snap["dcg.plan_cache.misses"])
	}
	if snap["dcg.plan_cache.evictions"] != 1 {
		t.Errorf("evictions = %d, want 1", snap["dcg.plan_cache.evictions"])
	}
	if snap["dcg.plan.compile_ns.count"] != 2 {
		t.Errorf("compile_ns.count = %d, want 2", snap["dcg.plan.compile_ns.count"])
	}
}

func TestRegistrationFamily(t *testing.T) {
	ctx, err := openmeta.New()
	if err != nil {
		t.Fatal(err)
	}
	fs, err := openmeta.RegisterSpecs(ctx, "SpecFmt", []openmeta.FieldSpec{
		{Name: "x", Kind: openmeta.Int, CType: openmeta.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the computed layout through the explicit-IOField path.
	fi, err := openmeta.RegisterIOFields(ctx, "IOFmt", fs.IOFields())
	if err != nil {
		t.Fatal(err)
	}
	wire, err := fi.Encode(openmeta.Record{"x": 41})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := fi.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if rec["x"] != int64(41) {
		t.Errorf("rec = %v", rec)
	}
}

// TestSentinelErrors checks each facade sentinel is reachable with errors.Is
// from the operation that produces it.
func TestSentinelErrors(t *testing.T) {
	ctx, err := openmeta.New()
	if err != nil {
		t.Fatal(err)
	}

	_, err = openmeta.RegisterSpecs(ctx, "Bad", []openmeta.FieldSpec{
		{Name: "n", Kind: openmeta.Nested, NestedName: "NoSuchFormat"},
	})
	if !errors.Is(err, openmeta.ErrUnknownFormat) {
		t.Errorf("nested unknown type: err = %v, want ErrUnknownFormat", err)
	}

	_, err = openmeta.RegisterSpecs(ctx, "Dup", []openmeta.FieldSpec{
		{Name: "a", Kind: openmeta.Int, CType: openmeta.CInt},
		{Name: "a", Kind: openmeta.Int, CType: openmeta.CInt},
	})
	if !errors.Is(err, openmeta.ErrDuplicateField) {
		t.Errorf("duplicate field: err = %v, want ErrDuplicateField", err)
	}

	f, err := openmeta.RegisterSpecs(ctx, "One", []openmeta.FieldSpec{
		{Name: "x", Kind: openmeta.Int, CType: openmeta.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Encode(openmeta.Record{"x": "nope"}); !errors.Is(err, openmeta.ErrBadValue) {
		t.Errorf("bad value: err = %v, want ErrBadValue", err)
	}
	if _, err := f.Decode([]byte{1}); !errors.Is(err, openmeta.ErrTruncated) {
		t.Errorf("truncated: err = %v, want ErrTruncated", err)
	}

	g, err := openmeta.RegisterSpecs(ctx, "Other", []openmeta.FieldSpec{
		{Name: "x", Kind: openmeta.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openmeta.CompilePlan(f, g); !errors.Is(err, openmeta.ErrFieldMismatch) {
		t.Errorf("incompatible formats: err = %v, want ErrFieldMismatch", err)
	}

	if _, err := openmeta.UnmarshalFormatMeta([]byte("garbage")); !errors.Is(err, openmeta.ErrBadMetadata) {
		t.Errorf("bad metadata: err = %v, want ErrBadMetadata", err)
	}

	src := openmeta.StaticSchemas(map[string]string{})
	if _, err := openmeta.DiscoverAndRegister(context.Background(), src, ctx, "missing"); !errors.Is(err, openmeta.ErrSchemaNotFound) {
		t.Errorf("schema not found: err = %v, want ErrSchemaNotFound", err)
	}

	// Sentinels produced deeper in the stack than this test reaches: check
	// they survive wrapping the way the producing layers wrap them.
	for name, sentinel := range map[string]error{
		"ErrSlowSubscriber": openmeta.ErrSlowSubscriber,
		"ErrMissingField":   openmeta.ErrMissingField,
		"ErrBusClosed":      openmeta.ErrBusClosed,
		"ErrInvalidRecord":  openmeta.ErrInvalidRecord,
	} {
		wrapped := fmt.Errorf("delivering: %w", sentinel)
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("%s does not survive wrapping", name)
		}
	}
}

// TestDeprecatedConstructorsStillWork keeps the pre-options signatures
// compiling and behaving.
func TestDeprecatedConstructorsStillWork(t *testing.T) {
	ctx, err := openmeta.NewContext(openmeta.ArchSparc64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openmeta.RegisterSchemaDocument(ctx, airline.FlightSchema); err != nil {
		t.Fatal(err)
	}
	if c := openmeta.NewPlanCache(); c == nil {
		t.Fatal("NewPlanCache() = nil")
	}
}
