package openmeta

import (
	"testing"

	"openmeta/internal/bench"
	"openmeta/internal/core"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

// BenchmarkTable8Fanout measures event-backbone delivery with increasing
// subscriber counts (the introduction's scalability claim). Each iteration
// runs a full broker + N subscribers + one publisher episode.
func BenchmarkTable8Fanout(b *testing.B) {
	cfg := bench.Quick()
	cfg.Messages = 50
	cfg.Trials = 1
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable9RegistrationScaling measures registration cost growth with
// field count, parse and register separated.
func BenchmarkTable9RegistrationScaling(b *testing.B) {
	docs := map[string][]byte{}
	for _, n := range []int{8, 64} {
		ctx, err := pbio.NewContext(machine.Sparc)
		if err != nil {
			b.Fatal(err)
		}
		doc := bench.SyntheticSchema(n)
		if _, err := core.RegisterDocument(ctx, doc); err != nil {
			b.Fatal(err)
		}
		docs[nameFor(n)] = doc
	}
	for name, doc := range docs {
		doc := doc
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx, err := pbio.NewContext(machine.Sparc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.RegisterDocument(ctx, doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func nameFor(n int) string {
	if n == 8 {
		return "fields=8"
	}
	return "fields=64"
}
