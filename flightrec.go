package openmeta

import (
	"net/http"

	"openmeta/internal/eventbus"
	"openmeta/internal/flight"
	"openmeta/internal/obsv"
)

// FlightRecorder is a fixed-capacity, lock-free ring of protocol events — a
// black box that is always on: connection churn, hello outcomes, frame and
// format traffic, slow-subscriber drops, reconnect attempts, discovery fetch
// outcomes and retry give-ups. Recording is allocation-free, so every
// component records into the process-wide default recorder unconditionally
// unless handed its own via WithFlightRecorder or WithBusFlightRecorder.
type FlightRecorder = flight.Recorder

// FlightEvent is one recorded protocol event, as /debug/flight serves it.
type FlightEvent = flight.Event

// NewFlightRecorder returns a recorder keeping the most recent capacity
// events (capacity <= 0 uses the default of 2048).
func NewFlightRecorder(capacity int) *FlightRecorder { return flight.New(capacity) }

// DefaultFlightRecorder returns the process-wide recorder every component
// records into by default.
func DefaultFlightRecorder() *FlightRecorder { return flight.Default() }

// FlightSnapshot returns the default recorder's retained events, newest
// first.
func FlightSnapshot() []FlightEvent { return flight.Default().Snapshot() }

// FlightHandler serves the default recorder's events as JSON, newest first,
// filterable with ?n=, ?conn=, ?stream= and ?kind=. DebugHandler mounts it
// at /debug/flight.
func FlightHandler() http.Handler { return flight.Handler(flight.Default()) }

// WithFlightRecorder directs a broker's flight events into r instead of the
// default recorder.
func WithFlightRecorder(r *FlightRecorder) BrokerOption { return eventbus.WithFlightRecorder(r) }

// WithBusFlightRecorder directs a publisher's or subscriber's flight events
// into r instead of the default recorder.
func WithBusFlightRecorder(r *FlightRecorder) BusClientOption {
	return eventbus.WithClientFlightRecorder(r)
}

// RegisterHealthProbe registers (or, with a nil check, removes) a named
// readiness probe on the process-default health set. Probes run on every
// /readyz request; any probe returning an error flips readiness to 503.
// Liveness (/healthz) deliberately ignores probes — a process that can answer
// is alive, and restart loops help nothing.
func RegisterHealthProbe(name string, check func() error) {
	obsv.RegisterProbe(name, check)
}

// HealthHandler serves liveness: always 200 while the process can answer,
// with uptime. DebugHandler mounts it at /healthz.
func HealthHandler() http.Handler { return obsv.DefaultHealth().LiveHandler() }

// ReadyHandler serves readiness: 200 while every registered probe passes,
// 503 with per-probe detail otherwise. DebugHandler mounts it at /readyz.
func ReadyHandler() http.Handler { return obsv.DefaultHealth().ReadyHandler() }
