package openmeta

import (
	"net/http"
	"sync"
	"time"

	"openmeta/internal/alert"
	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/obsv"
	"openmeta/internal/profcap"
)

// Self-monitoring facade: history (a fixed-memory time-series ring over the
// default observer), SLO alert rules evaluated against it, and
// anomaly-triggered profile capture. Typical embedding:
//
//	openmeta.EnableHistory(5 * time.Second)
//	openmeta.EnableProfileCapture("")            // in-memory ring only
//	openmeta.RegisterAlertRules(openmeta.AlertRule{
//	    Name: "queue-depth", Metric: "eventbus.queue_depth",
//	    Op: openmeta.AlertGT, Threshold: 192,
//	    For: 30 * time.Second, Capture: true,
//	})
//	mux.Handle("/debug/history", openmeta.HistoryHandler())
//
// DebugHandler mounts /debug/history, /debug/alerts and /debug/profiles/
// automatically. While any rule fires, /readyz degrades (the "alerts"
// probe) and alert_fired / alert_resolved events land in /debug/flight.

// AlertRule is one SLO condition over a history series: Metric names a
// series as /debug/history spells it, and the condition must hold across the
// whole For window before the rule fires (and stay clear that long to
// resolve). Capture requests a CPU/heap/goroutine snapshot at fire time.
type AlertRule = alert.Rule

// Comparison operators and severities for AlertRule.
const (
	AlertGT = alert.OpGT
	AlertGE = alert.OpGE
	AlertLT = alert.OpLT
	AlertLE = alert.OpLE

	AlertInfo     = alert.SevInfo
	AlertWarn     = alert.SevWarn
	AlertCritical = alert.SevCritical
)

// ParseAlertRules parses the alert rule DSL — one rule per line or
// ';'-separated statement, '#' comments:
//
//	<name>: <metric> <op> <threshold> for <duration> [severity <sev>] [capture]
//	queue-depth: eventbus.queue_depth > 192 for 30s severity warn capture
func ParseAlertRules(src string) ([]AlertRule, error) {
	return alert.ParseRules("inline", src)
}

var (
	selfmonMu sync.Mutex
	historyDB *histdb.DB
	alertEng  *alert.Engine
	capturer  *profcap.Capturer
)

// EnableHistory starts sampling the default observer every interval (0 uses
// the 5s default) into an in-process ring of the last 720 samples, served by
// HistoryHandler. Idempotent: after the first call the interval is fixed.
func EnableHistory(interval time.Duration) {
	selfmonMu.Lock()
	defer selfmonMu.Unlock()
	enableHistoryLocked(interval)
}

func enableHistoryLocked(interval time.Duration) *histdb.DB {
	if historyDB == nil {
		historyDB = histdb.New(obsv.Default(), histdb.WithInterval(interval)).Start()
	}
	return historyDB
}

// EnableProfileCapture arms anomaly-triggered profile capture: CPU + heap +
// goroutine snapshots, kept in a bounded in-memory ring served by
// ProfilesHandler and additionally spilled to dir when non-empty. Idempotent.
func EnableProfileCapture(dir string) {
	selfmonMu.Lock()
	defer selfmonMu.Unlock()
	enableProfileCaptureLocked(dir)
}

func enableProfileCaptureLocked(dir string) *profcap.Capturer {
	if capturer == nil {
		var opts []profcap.Option
		if dir != "" {
			opts = append(opts, profcap.WithDir(dir))
		}
		opts = append(opts, profcap.WithObserver(obsv.Default()))
		capturer = profcap.New(opts...)
	}
	return capturer
}

// RegisterAlertRules adds rules to the process-wide alert engine, creating
// it (and enabling history at the default interval, if not already enabled)
// on first use. Firing rules degrade /readyz, emit flight-recorder events
// and move alerts.active / alerts.fired_total; rules with Capture trigger a
// profile capture if EnableProfileCapture was called.
func RegisterAlertRules(rules ...AlertRule) error {
	selfmonMu.Lock()
	defer selfmonMu.Unlock()
	if alertEng == nil {
		db := enableHistoryLocked(0)
		opts := []alert.Option{
			alert.WithObserver(obsv.Default()),
			alert.WithFlightRecorder(flight.Default()),
			alert.WithHealth(obsv.DefaultHealth()),
		}
		if capturer != nil {
			opts = append(opts, alert.WithCapturer(capturer))
		}
		alertEng = alert.New(db, opts...).Bind()
	}
	return alertEng.Add(rules...)
}

// HistoryHandler serves the metrics history ring as JSON (?key=&since=
// filters); 503 until EnableHistory.
func HistoryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		selfmonMu.Lock()
		db := historyDB
		selfmonMu.Unlock()
		histdb.Handler(db).ServeHTTP(w, req)
	})
}

// AlertsHandler serves every registered rule's state as JSON; 503 until
// RegisterAlertRules.
func AlertsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		selfmonMu.Lock()
		eng := alertEng
		selfmonMu.Unlock()
		alert.StatusHandler(eng).ServeHTTP(w, req)
	})
}

// ProfilesHandler serves the capture ring: a JSON index at its root,
// downloadable pprof profiles at <id>/<kind>, and POST trigger for a manual
// capture. Expects to be mounted at /debug/profiles/; 503 until
// EnableProfileCapture.
func ProfilesHandler() http.Handler {
	return http.StripPrefix("/debug/profiles", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		selfmonMu.Lock()
		c := capturer
		selfmonMu.Unlock()
		profcap.Handler(c).ServeHTTP(w, req)
	}))
}
