package openmeta

import (
	"net/http"

	"openmeta/internal/eventbus"
	"openmeta/internal/obsv"
	"openmeta/internal/trace"
)

// Tracer records spans of work into a fixed-size ring buffer with 1-in-N
// sampling; unsampled work costs nothing (no allocation, no lock). Every
// component records into the process-wide default tracer unless handed its
// own via WithTracing or WithBusTracing.
type Tracer = trace.Tracer

// Span is one completed, sampled unit of work: its 128-bit trace identity,
// 64-bit span ID, parent link, name, detail, start time and duration.
type Span = trace.Span

// TraceID identifies one end-to-end trace across processes.
type TraceID = trace.TraceID

// NewTracer returns a tracer keeping the most recent capacity sampled spans
// (capacity <= 0 uses the default of 4096). Sampling starts disabled; call
// SetSampling to turn it on.
func NewTracer(capacity int) *Tracer { return trace.NewTracer(capacity) }

// DefaultTracer returns the process-wide tracer that every component
// records into by default. It starts disabled.
func DefaultTracer() *Tracer { return trace.Default() }

// EnableTracing turns on the default tracer, sampling one in every n new
// traces (n=1 records everything, n=0 disables tracing again). The sampling
// decision is made once at the root span — a publisher's sampled record
// stays sampled through the broker and into its subscribers, because the
// trace context travels with the record on the wire.
func EnableTracing(n int) { trace.Default().SetSampling(n) }

// TraceSnapshot returns the default tracer's retained spans, oldest first.
func TraceSnapshot() []Span { return trace.Default().Snapshot() }

// TraceHandler serves the default tracer's retained spans over HTTP: JSON
// by default, Chrome trace_event format with ?format=chrome (load the
// response in chrome://tracing or Perfetto). DebugHandler mounts it at
// /debug/trace.
func TraceHandler() http.Handler { return trace.Handler(trace.Default()) }

// MetricsHandler serves the default observer in the Prometheus text
// exposition format. DebugHandler mounts it at /metrics.
func MetricsHandler() http.Handler { return obsv.Default().MetricsHandler() }

// WithTracing directs a broker's spans (broker.route, dcg.compile,
// dcg.convert) into t instead of the default tracer.
func WithTracing(t *Tracer) BrokerOption { return eventbus.WithTracer(t) }

// WithBusTracing directs a publisher's or subscriber's spans (pub.publish,
// pbio.encode, pbio.decode) into t instead of the default tracer. A
// publisher or subscriber whose tracer is enabled negotiates the traced
// protocol extension with the broker at dial time; against an old broker it
// falls back to the base protocol automatically.
func WithBusTracing(t *Tracer) BusClientOption { return eventbus.WithClientTracer(t) }
