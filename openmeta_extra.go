package openmeta

import (
	"io"
	"time"

	"openmeta/internal/core"
	"openmeta/internal/discovery"
	"openmeta/internal/gen"
	"openmeta/internal/pbio"
)

// Additional capabilities beyond the core pipeline: record files, schema
// generation, format matching, format scoping, change watching and code
// generation.

type (
	// FileWriter appends self-describing NDR records to a file.
	FileWriter = pbio.FileWriter
	// FileReader reads a self-describing record file.
	FileReader = pbio.FileReader
	// MatchScore grades how well a format fits a message.
	MatchScore = core.MatchScore
	// SchemaWatcher polls a discovery source and reports schema changes.
	SchemaWatcher = discovery.Watcher
	// SchemaUpdate is one change notification from a SchemaWatcher.
	SchemaUpdate = discovery.Update
	// GenOptions configures Go code generation from schemas.
	GenOptions = gen.Options
)

// CreateRecordFile creates (or truncates) a PBIO record file at path.
func CreateRecordFile(path string) (*FileWriter, error) { return pbio.CreateFile(path) }

// NewRecordFileWriter starts a record stream on any writer.
func NewRecordFileWriter(w io.Writer) (*FileWriter, error) { return pbio.NewFileWriter(w) }

// OpenRecordFile opens a PBIO record file, adopting its formats into ctx.
func OpenRecordFile(path string, ctx *Context) (*FileReader, error) {
	return pbio.OpenFile(path, ctx)
}

// NewRecordFileReader reads a record stream from any reader.
func NewRecordFileReader(r io.Reader, ctx *Context) (*FileReader, error) {
	return pbio.NewFileReader(r, ctx)
}

// SchemaForFormats renders registered formats back into an XML Schema
// document model — for publishing programmatically created (or adopted)
// formats on a metadata repository.
func SchemaForFormats(targetNamespace string, formats ...*Format) (*Schema, error) {
	return core.SchemaForFormats(targetNamespace, formats...)
}

// SchemaDocumentForFormats is SchemaForFormats rendered as XML text.
func SchemaDocumentForFormats(targetNamespace string, formats ...*Format) (string, error) {
	return core.SchemaDocumentForFormats(targetNamespace, formats...)
}

// MatchXML determines which candidate format an XML text message most
// closely fits (the schema-checking application of the paper's §4.1.1).
// Scores come back sorted best-first.
func MatchXML(candidates []*Format, instance []byte) ([]MatchScore, error) {
	return core.MatchXML(candidates, instance)
}

// MatchBinary determines which candidate format a raw NDR record most
// closely fits — e.g. when a record's format ID is unknown.
func MatchBinary(candidates []*Format, record []byte) ([]MatchScore, error) {
	return core.MatchBinary(candidates, record)
}

// DeriveSubset builds a format containing only the named fields of f — a
// "slice" of an information stream (the paper's §4.4 format-scoping).
func DeriveSubset(f *Format, fields []string) (*Format, error) {
	return pbio.DeriveSubset(f, fields)
}

// WatchSchemas polls a discovery source for schema changes; add names with
// Add and drain Updates. Close when done.
func WatchSchemas(src DiscoverySource, interval time.Duration) *SchemaWatcher {
	return discovery.NewWatcher(src, interval)
}

// GenerateGo renders Go message types, a registration helper and the schema
// document itself as gofmt-formatted source (the §7 language-binding
// generator; also available as cmd/xml2gen).
func GenerateGo(schemaDoc string, opts GenOptions) (string, error) {
	return gen.GoSource(schemaDoc, opts)
}

// ValidateRecord checks a decoded record against the facet constraints its
// schema declares through simple types (enumerations, numeric ranges,
// string lengths) — schema checking applied to live messages (§4.1.1).
func ValidateRecord(s *Schema, typeName string, rec Record) error {
	return core.ValidateRecord(s, typeName, rec)
}
