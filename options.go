package openmeta

import (
	"log/slog"
	"net"
	"time"

	"openmeta/internal/dcg"
	"openmeta/internal/discovery"
	"openmeta/internal/eventbus"
	"openmeta/internal/pbio"
	"openmeta/internal/retry"
)

// Option configures a Context built with New. The zero configuration lays
// formats out for the native architecture and reports metrics to the
// default observer (see Stats).
type Option func(*contextConfig)

type contextConfig struct {
	arch *Arch
	obs  *Observer
}

// WithArch lays formats out for arch instead of the native architecture —
// how tests and tools simulate heterogeneous peers.
func WithArch(arch *Arch) Option {
	return func(c *contextConfig) { c.arch = arch }
}

// WithObserver directs the context's metrics (format registrations and
// adoptions, encode/decode calls and bytes) into obs instead of the
// process-wide default registry snapshotted by Stats.
func WithObserver(obs *Observer) Option {
	return func(c *contextConfig) { c.obs = obs }
}

// New creates a format catalog. With no options it lays formats out for the
// native architecture:
//
//	ctx, err := openmeta.New()
//	ctx, err := openmeta.New(openmeta.WithArch(openmeta.ArchSparc64))
func New(opts ...Option) (*Context, error) {
	cfg := contextConfig{arch: NativeArch}
	for _, opt := range opts {
		opt(&cfg)
	}
	var popts []pbio.ContextOption
	if cfg.obs != nil {
		popts = append(popts, pbio.WithObserver(cfg.obs))
	}
	return pbio.NewContext(cfg.arch, popts...)
}

// NewContext creates a format catalog laying formats out for arch.
//
// Deprecated: use New with WithArch; NewContext remains so existing callers
// keep compiling.
func NewContext(arch *Arch) (*Context, error) { return New(WithArch(arch)) }

// BrokerOption configures a Broker (see NewBroker and ListenBroker).
type BrokerOption = eventbus.BrokerOption

// WithBrokerLogger directs broker diagnostics to a printf-style sink.
// Retained for compatibility with pre-slog callers; new code should use
// WithBrokerSlog.
func WithBrokerLogger(logf func(format string, args ...interface{})) BrokerOption {
	return eventbus.WithLogger(logf)
}

// WithBrokerSlog directs broker diagnostics to l (default slog.Default())
// as structured records with component, conn and stream attributes.
func WithBrokerSlog(l *slog.Logger) BrokerOption { return eventbus.WithSlog(l) }

// WithQueueDepth bounds each subscriber's outbound frame queue (default
// 256). A slow subscriber whose queue fills loses event frames rather than
// stalling the bus.
func WithQueueDepth(n int) BrokerOption { return eventbus.WithQueueDepth(n) }

// WithBrokerObserver directs the broker's metrics (published, delivered,
// dropped, per-stream counters, queue depth) into obs instead of the
// default registry.
func WithBrokerObserver(obs *Observer) BrokerOption { return eventbus.WithObserver(obs) }

// WithPlanCache substitutes the conversion-plan cache the broker uses for
// format scoping — share one across brokers or bound it with
// NewPlanCache(WithPlanCacheLimit(n)).
func WithPlanCache(c *PlanCache) BrokerOption { return eventbus.WithPlanCache(c) }

// WithWriteDeadline bounds each subscriber-connection flush (default 2s). A
// peer that stops draining its socket for longer is treated as slow and
// disconnected rather than allowed to stall the broker's write loop.
func WithWriteDeadline(d time.Duration) BrokerOption { return eventbus.WithWriteDeadline(d) }

// RetryPolicy shapes retry behaviour across the robustness layer:
// MaxAttempts, Initial/Max backoff, Multiplier, Jitter, per-attempt
// timeouts and an optional shared budget. The zero value uses sensible
// defaults (four attempts, 50ms initial backoff doubling to a 5s cap with
// 50% jitter).
type RetryPolicy = retry.Policy

// RetryBudget caps retry volume across many callers sharing one budget, so
// a broad outage cannot amplify into a retry storm.
type RetryBudget = retry.Budget

// NewRetryBudget returns a budget allowing burst retries immediately and
// perSecond sustained.
func NewRetryBudget(burst int, perSecond float64) *RetryBudget {
	return retry.NewBudget(burst, perSecond)
}

// BusClientOption configures publishers and subscribers dialed with
// DialPublisher and DialSubscriber.
type BusClientOption = eventbus.ClientOption

// WithBusReconnect makes a publisher or subscriber survive broken broker
// connections: it redials under p, re-announces streams or re-subscribes
// (field scopes intact), and re-sends format metadata on the fresh
// connection.
func WithBusReconnect(p RetryPolicy) BusClientOption { return eventbus.WithReconnect(p) }

// WithBusDialTimeout bounds each broker dial attempt (default 10s).
func WithBusDialTimeout(d time.Duration) BusClientOption { return eventbus.WithDialTimeout(d) }

// DiscoveryClientOption configures clients built with NewDiscoveryClient.
type DiscoveryClientOption = discovery.ClientOption

// WithDiscoveryTimeout bounds each schema fetch (default 10s).
func WithDiscoveryTimeout(d time.Duration) DiscoveryClientOption {
	return discovery.WithTimeout(d)
}

// WithDiscoveryRetry retries failed schema fetches (transport errors and
// 5xx responses; 404s and malformed schemas are permanent) under p.
func WithDiscoveryRetry(p RetryPolicy) DiscoveryClientOption { return discovery.WithRetry(p) }

// WithDiscoveryStaleServe lets the client fall back to an expired cached
// schema for up to max past its TTL when every fetch attempt fails,
// counting each degraded answer in discovery.stale_served. Pass a negative
// max for an unlimited window. Absence (ErrSchemaNotFound) is never masked
// with stale data.
func WithDiscoveryStaleServe(max time.Duration) DiscoveryClientOption {
	return discovery.WithStaleServe(max)
}

// WithDiscoveryTTL sets how long fetched schemas are cached (default 5m).
func WithDiscoveryTTL(ttl time.Duration) DiscoveryClientOption { return discovery.WithTTL(ttl) }

// ListenBroker starts an event backbone broker on addr ("host:0" picks a
// free port).
func ListenBroker(addr string, opts ...BrokerOption) (*Broker, error) {
	return eventbus.Listen(addr, opts...)
}

// NewBroker starts a broker on an existing listener.
func NewBroker(ln net.Listener, opts ...BrokerOption) *Broker {
	return eventbus.NewBroker(ln, opts...)
}

// PlanCacheOption configures a PlanCache built with NewPlanCache.
type PlanCacheOption = dcg.CacheOption

// WithPlanCacheLimit bounds the cache to n memoized plans (0 = unbounded);
// the oldest format pairing is evicted when the bound is exceeded.
func WithPlanCacheLimit(n int) PlanCacheOption { return dcg.WithMaxEntries(n) }

// WithPlanCacheObserver directs the cache's hit/miss/eviction counters and
// compile-time histogram into obs instead of the default registry.
func WithPlanCacheObserver(obs *Observer) PlanCacheOption { return dcg.WithObserver(obs) }

// NewPlanCache returns a memoizing conversion-plan cache.
func NewPlanCache(opts ...PlanCacheOption) *PlanCache { return dcg.NewCache(opts...) }
