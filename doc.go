// Package openmeta is an open-metadata communication library for
// heterogeneous distributed systems, reproducing the system described in
// "Open Metadata Formats: Efficient XML-Based Communication for
// Heterogeneous Distributed Systems" (Widener, Schwan, Eisenhauer;
// Georgia Tech GIT-CC-00-21 / ICDCS 2001).
//
// The library separates the three steps every binary communication
// mechanism performs:
//
//   - Discovery: message formats are described in XML Schema documents that
//     can live in source code, on the file system, or on a remote metadata
//     repository (with compiled-in fallback for fault tolerance).
//   - Binding: xml2wire converts a discovered schema into native PBIO
//     format metadata for the local architecture — field sizes from
//     sizeof-equivalents, offsets with compiler padding — and registers it
//     at run time, so formats can change without recompiling anything.
//   - Marshaling: records travel in NDR (Natural Data Representation), the
//     sender's own memory layout plus compact metadata; receivers convert
//     only when representations differ, using conversion programs compiled
//     once per format pair.
//
// # Quick start
//
//	ctx, _ := openmeta.New()
//	set, _ := openmeta.RegisterSchemaDocument(ctx, schemaXML)
//	f, _ := set.Lookup("ASDOffEvent")
//	wire, _ := f.Encode(openmeta.Record{"fltNum": 1842, "dest": "MCO"})
//	rec, _ := f.Decode(wire)
//
// Constructors take functional options: New(WithArch(ArchSparc64)) lays
// formats out for a simulated peer, ListenBroker(addr, WithQueueDepth(64))
// bounds subscriber queues, NewPlanCache(WithPlanCacheLimit(128)) bounds
// plan memoization.
//
// # Registering formats
//
// A Context accepts formats from three metadata sources:
//
//   - RegisterIOFields: explicit PBIO field descriptors (name, type, size,
//     offset), for layouts already known byte-for-byte.
//   - RegisterSpecs: portable field declarations laid out for the context's
//     architecture, the way a compiler would.
//   - RegisterSchema / RegisterSchemaDocument / RegisterSchemaFile /
//     RegisterSchemaURL: XML Schema documents through the xml2wire pipeline
//     — the paper's open-metadata path.
//
// # Observability
//
// Every layer reports counters and latency histograms into a process-wide
// registry: Stats returns a snapshot keyed by stable metric names
// (pbio.encode.calls, dcg.plan_cache.hits, eventbus.delivered, ...),
// StatsHandler serves the same snapshot as JSON, and DebugHandler adds
// expvar and pprof — the daemons mount it behind their -debug-addr flag.
// Components accept a private registry via WithObserver (and the broker and
// plan-cache equivalents) when isolation matters; Broker.Stats gives a
// typed per-broker view. The hot-path instruments are allocation-free.
//
// Failures surface as wrapped sentinel errors (ErrUnknownFormat,
// ErrFieldMismatch, ErrSlowSubscriber, ...) so callers branch with
// errors.Is.
//
// See examples/ for runnable programs: a quickstart, the paper's airline
// operational information system on the event backbone, format evolution
// without recompilation, and cross-architecture exchange.
package openmeta
