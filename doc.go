// Package openmeta is an open-metadata communication library for
// heterogeneous distributed systems, reproducing the system described in
// "Open Metadata Formats: Efficient XML-Based Communication for
// Heterogeneous Distributed Systems" (Widener, Schwan, Eisenhauer;
// Georgia Tech GIT-CC-00-21 / ICDCS 2001).
//
// The library separates the three steps every binary communication
// mechanism performs:
//
//   - Discovery: message formats are described in XML Schema documents that
//     can live in source code, on the file system, or on a remote metadata
//     repository (with compiled-in fallback for fault tolerance).
//   - Binding: xml2wire converts a discovered schema into native PBIO
//     format metadata for the local architecture — field sizes from
//     sizeof-equivalents, offsets with compiler padding — and registers it
//     at run time, so formats can change without recompiling anything.
//   - Marshaling: records travel in NDR (Natural Data Representation), the
//     sender's own memory layout plus compact metadata; receivers convert
//     only when representations differ, using conversion programs compiled
//     once per format pair.
//
// # Quick start
//
//	ctx, _ := openmeta.NewContext(openmeta.NativeArch)
//	set, _ := openmeta.RegisterSchemaDocument(ctx, schemaXML)
//	f, _ := set.Lookup("ASDOffEvent")
//	wire, _ := f.Encode(openmeta.Record{"fltNum": 1842, "dest": "MCO"})
//	rec, _ := f.Decode(wire)
//
// See examples/ for runnable programs: a quickstart, the paper's airline
// operational information system on the event backbone, format evolution
// without recompilation, and cross-architecture exchange.
package openmeta
