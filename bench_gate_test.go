package openmeta

// Tests for the scripts/bench.sh regression gate, driven against fixture
// JSON via the -compare-only mode (no benchmarks run). These pin the CI
// bench-smoke failure modes: an injected omload p99 regression must fail,
// a gated benchmark missing from the baseline must fail loudly (the silent
// no-regression hole), and matching results must pass.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func benchGate(t *testing.T, current, baseline string, env ...string) (string, error) {
	t.Helper()
	if _, err := exec.LookPath("jq"); err != nil {
		t.Skip("jq not installed")
	}
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("sh not installed")
	}
	cmd := exec.Command("sh", "scripts/bench.sh", "-compare-only",
		filepath.Join("testdata", "benchgate", current),
		filepath.Join("testdata", "benchgate", baseline))
	cmd.Dir = "."
	cmd.Env = append(cmd.Environ(), env...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestBenchGatePass(t *testing.T) {
	out, err := benchGate(t, "current_pass.json", "baseline.json")
	if err != nil {
		t.Fatalf("clean compare failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "RESULT: PASS") {
		t.Fatalf("expected RESULT: PASS:\n%s", out)
	}
	// The non-gated Table3 blowup (9µs -> 20µs) must be reported info-only.
	if strings.Contains(out, "REGRESSED") {
		t.Fatalf("non-gated benchmark was gated:\n%s", out)
	}
}

func TestBenchGateP99Regression(t *testing.T) {
	// omload/e2e_p99 doubles against the baseline: the gate must fail.
	out, err := benchGate(t, "current_p99_regressed.json", "baseline.json")
	if err == nil {
		t.Fatalf("p99 regression passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "omload/e2e_p99") {
		t.Fatalf("failure output does not name the regressed benchmark:\n%s", out)
	}
	if !strings.Contains(out, "regression over") {
		t.Fatalf("missing clear regression message:\n%s", out)
	}
	// A generous threshold lets the same fixture pass.
	out, err = benchGate(t, "current_p99_regressed.json", "baseline.json",
		"BENCH_MAX_REGRESSION=200")
	if err != nil {
		t.Fatalf("200%% threshold should pass: %v\n%s", err, out)
	}
	// OMLOAD_MAX_REGRESSION loosens only the omload gate (the E2E tail is
	// noisier than ns/op microbenchmarks), leaving Table gates strict.
	out, err = benchGate(t, "current_p99_regressed.json", "baseline.json",
		"OMLOAD_MAX_REGRESSION=200")
	if err != nil {
		t.Fatalf("loosened omload threshold should pass: %v\n%s", err, out)
	}
	if !strings.Contains(out, "RESULT: PASS") {
		t.Fatalf("expected RESULT: PASS with loose omload gate:\n%s", out)
	}
}

func TestBenchGateMissingBaselineKey(t *testing.T) {
	// The baseline lacks omload/e2e_p99 which the current run has: the old
	// jq path silently treated that as no-regression; now it must fail with
	// a clear message.
	out, err := benchGate(t, "current_pass.json", "baseline_nokey.json")
	if err == nil {
		t.Fatalf("missing gated baseline key passed the gate:\n%s", out)
	}
	if !strings.Contains(out, "MISSING") {
		t.Fatalf("no MISSING row in output:\n%s", out)
	}
	if !strings.Contains(out, "missing a gated benchmark") {
		t.Fatalf("missing clear missing-key message:\n%s", out)
	}
}

func TestBenchGateHistdbBudget(t *testing.T) {
	// BenchmarkSample over its absolute ns/op budget must fail even though
	// no relative gate tripped.
	out, err := benchGate(t, "current_overbudget.json", "baseline.json")
	if err == nil {
		t.Fatalf("over-budget sampler passed:\n%s", out)
	}
	if !strings.Contains(out, "exceeds budget") {
		t.Fatalf("missing budget failure message:\n%s", out)
	}
	// Raising the budget clears it.
	out, err = benchGate(t, "current_overbudget.json", "baseline.json",
		"HISTDB_BUDGET_NS=5000000")
	if err != nil {
		t.Fatalf("raised budget should pass: %v\n%s", err, out)
	}
}

func TestBenchGateUsageErrors(t *testing.T) {
	if _, err := exec.LookPath("jq"); err != nil {
		t.Skip("jq not installed")
	}
	// Missing files and missing operands must be usage errors, not passes.
	cmd := exec.Command("sh", "scripts/bench.sh", "-compare-only", "nope.json")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("missing operand accepted:\n%s", out)
	}
	cmd = exec.Command("sh", "scripts/bench.sh", "-compare-only", "nope.json", "alsono.json")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("nonexistent files accepted:\n%s", out)
	}
}
