package openmeta

import (
	"net/http"

	"openmeta/internal/eventbus"
	"openmeta/internal/obsv"
)

// Observer is a metrics registry: named counters, gauges and histograms
// with an allocation-free hot path. Every component reports into the
// process-wide default observer unless handed its own via WithObserver,
// WithBrokerObserver or WithPlanCacheObserver.
type Observer = obsv.Registry

// BrokerStats is a point-in-time view of a Broker's delivery health (see
// (*Broker).Stats).
type BrokerStats = eventbus.BrokerStats

// NewObserver returns an empty metrics registry, for callers that want
// per-component isolation instead of the process-wide default.
func NewObserver() *Observer { return obsv.New() }

// DefaultObserver returns the process-wide registry every component reports
// into by default.
func DefaultObserver() *Observer { return obsv.Default() }

// Stats returns a point-in-time snapshot of the default observer: counter
// and gauge values under their names, histograms flattened to .count, .sum,
// .max, .p50, .p95 and .p99 keys. Metric names are stable and documented in the
// README's Observability section; the important ones:
//
//	pbio.formats.registered    formats registered locally
//	pbio.formats.adopted       formats adopted from remote peers
//	pbio.encode.calls/.bytes   NDR records encoded and wire bytes produced
//	pbio.decode.calls/.bytes   NDR records decoded and wire bytes consumed
//	pbio.meta.marshals/.unmarshals  format-metadata exchanges
//	dcg.plan_cache.hits/.misses/.evictions  conversion-plan cache behaviour
//	dcg.plan.compile_ns.*      plan-compilation latency histogram
//	dcg.conversions            record conversions executed
//	eventbus.published/.delivered/.dropped  backbone delivery health
//	eventbus.stream.<name>.*   the same, per stream
//	eventbus.queue_depth       current outbound backlog across subscribers
//	eventbus.pub.reconnects/.redial_errors  publisher reconnect outcomes
//	eventbus.sub.reconnects/.redial_errors  subscriber reconnect outcomes
//	discovery.fetches/.cache_hits/.fetch_ns.*  metadata discovery costs
//	discovery.stale_served     expired schemas served during repo outages
//	retry.attempts/.retries/.giveups  robustness-layer retry volume
//	retry.sleep_ns.*           backoff sleep histogram
//	alerts.active              SLO alert rules currently firing
//	alerts.fired_total/.resolved_total  alert lifecycle counts
//	profcap.captures_total/.skipped_total  anomaly profile captures taken/rate-limited
//	obsv.labels.dropped        label combinations clamped into the overflow child
func Stats() map[string]int64 { return obsv.Default().Snapshot() }

// StatsDelta returns after-minus-before for two Stats snapshots — the form
// cmd/benchtab uses to line live counters up with Table-1 rows.
func StatsDelta(before, after map[string]int64) map[string]int64 {
	return obsv.Delta(before, after)
}

// StatsHandler returns an http.Handler serving the default observer's
// snapshot as JSON — mount it wherever the application already serves HTTP.
func StatsHandler() http.Handler { return obsv.Default().Handler() }

// DebugHandler returns the full debug endpoint the daemons mount behind
// their -debug-addr flag: /stats (JSON snapshot), /metrics (Prometheus text
// exposition), /debug/trace (recent spans, see TraceHandler), /debug/history
// (metrics time-series ring, see EnableHistory), /debug/alerts (SLO rule
// state), /debug/profiles/ (anomaly profile captures), /debug/vars (expvar)
// and /debug/pprof/... (net/http/pprof). GET /debug lists everything.
func DebugHandler() http.Handler {
	return obsv.DebugMux(obsv.Default(), SelfMonEndpoints()...)
}

// SelfMonEndpoints returns the tracing and self-monitoring debug endpoints
// as DebugMux extras — what DebugHandler and the daemons mount alongside the
// built-in /stats, /metrics, /debug/flight and health endpoints.
func SelfMonEndpoints() []obsv.DebugEndpoint {
	return []obsv.DebugEndpoint{
		{Path: "/debug/trace", Handler: TraceHandler(), Desc: "recent trace spans, newest first"},
		{Path: "/debug/history", Handler: HistoryHandler(), Desc: "metrics time-series ring (?key=&since=)"},
		{Path: "/debug/alerts", Handler: AlertsHandler(), Desc: "SLO alert rules and firing state"},
		{Path: "/debug/profiles/", Handler: ProfilesHandler(), Desc: "anomaly-triggered pprof captures"},
	}
}
