package openmeta

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmeta/internal/alert"
	"openmeta/internal/eventbus"
	"openmeta/internal/faultnet"
	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/profcap"
	"openmeta/internal/testutil"
)

// TestSelfMonitoringEndToEnd is the acceptance scenario for the
// self-monitoring stack: a broker with a queue-depth alert rule (Capture on),
// a subscriber stalled behind a faultnet-throttled link, and a publisher
// pushing bulk records. Every assertion is made from the outside, over HTTP,
// the way an operator would see the incident:
//
//	(a) /debug/history shows the queue-depth excursion
//	(b) /debug/flight?kind=alert holds an ordered fired→resolved pair
//	(c) /readyz is 503 while the alert fires and 200 after it resolves
//	(d) /debug/profiles serves a parseable pprof capture timestamped inside
//	    the firing window
func TestSelfMonitoringEndToEnd(t *testing.T) {
	// Isolated monitoring stack: 20ms sampling, so the rule's 60ms For window
	// is three consecutive breaching samples.
	reg := obsv.New()
	health := obsv.NewHealth()
	rec := flight.New(256)
	db := histdb.New(reg, histdb.WithInterval(20*time.Millisecond), histdb.WithCapacity(512))
	capt := profcap.New(profcap.WithCPUDuration(150*time.Millisecond), profcap.WithObserver(reg))
	engine := alert.New(db,
		alert.WithObserver(reg),
		alert.WithFlightRecorder(rec),
		alert.WithHealth(health),
		alert.WithCapturer(capt),
	).Bind()
	if err := engine.Add(alert.Rule{
		Name:      "queue-depth",
		Metric:    "eventbus.queue_depth",
		Op:        alert.OpGT,
		Threshold: 8,
		For:       60 * time.Millisecond,
		Severity:  alert.SevCritical,
		Capture:   true,
	}); err != nil {
		t.Fatal(err)
	}
	db.Start()
	defer db.Stop()

	srv := httptest.NewServer(obsv.DebugMuxFor(reg, health, rec,
		obsv.DebugEndpoint{Path: "/debug/history", Handler: histdb.Handler(db), Desc: "history"},
		obsv.DebugEndpoint{Path: "/debug/profiles/",
			Handler: http.StripPrefix("/debug/profiles", profcap.Handler(capt)), Desc: "profiles"}))
	defer srv.Close()

	// The broker under observation: small queue so the excursion is quick, a
	// long write deadline so resolution stays under the test's control.
	broker, err := eventbus.Listen("127.0.0.1:0",
		eventbus.WithObserver(reg),
		eventbus.WithQueueDepth(32),
		eventbus.WithWriteDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	// The slow subscriber connects through a proxy whose broker-side reads
	// crawl under injected faultnet latency — and it never calls Next, so its
	// receive path wedges completely once buffers fill.
	proxyAddr, closeProxy := stallingProxy(t, broker.Addr().String())
	defer closeProxy()
	subCtx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eventbus.DialSubscriber(proxyAddr, subCtx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("bulk"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "subscriber registration", func() bool {
		return broker.SubscriberCount("bulk") == 1
	})

	pubCtx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := pubCtx.RegisterSpec("Bulk", []pbio.FieldSpec{
		{Name: "seq", Kind: pbio.Int, CType: machine.CInt},
		{Name: "payload", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "n"},
		{Name: "n", Kind: pbio.Int, CType: machine.CInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := eventbus.DialPublisher(broker.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Publish 32KB records until told to stop; the stalled subscriber's queue
	// climbs past the threshold within a few samples.
	payload := make([]uint64, 4096)
	stopPub := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := 0; ; i++ {
			select {
			case <-stopPub:
				return
			default:
			}
			if err := pub.PublishRecord("bulk", bulk, pbio.Record{"seq": i, "payload": payload}); err != nil {
				return
			}
		}
	}()

	// (c1) readiness degrades while the rule fires.
	waitFor(t, 15*time.Second, "/readyz to degrade while alert fires", func() bool {
		return httpStatus(t, srv.URL+"/readyz") == http.StatusServiceUnavailable
	})

	// (d1) the capture the rule requested appears (CPU window is 150ms).
	var capIdx struct {
		Captures []struct {
			ID       int       `json:"id"`
			Reason   string    `json:"reason"`
			Time     time.Time `json:"time"`
			Profiles []string  `json:"profiles"`
		} `json:"captures"`
	}
	waitFor(t, 10*time.Second, "profile capture to land", func() bool {
		httpJSON(t, srv.URL+"/debug/profiles/", &capIdx)
		return len(capIdx.Captures) >= 1
	})

	// Clear the incident: stop publishing and tear the stalled path down; the
	// broker unregisters the subscriber and queue depth returns to zero.
	close(stopPub)
	<-pubDone
	closeProxy()
	_ = sub.Close()

	// (c2) readiness restores after the hysteresis window.
	waitFor(t, 15*time.Second, "/readyz to restore after resolve", func() bool {
		return httpStatus(t, srv.URL+"/readyz") == http.StatusOK
	})

	// (a) the history ring recorded the excursion.
	var hist struct {
		Series map[string]struct {
			Kind   string `json:"kind"`
			Points []struct {
				T int64 `json:"t"`
				V int64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	httpJSON(t, srv.URL+"/debug/history?key=eventbus.queue_depth", &hist)
	qd, ok := hist.Series["eventbus.queue_depth"]
	if !ok {
		t.Fatalf("history has no eventbus.queue_depth series")
	}
	var peak int64
	for _, p := range qd.Points {
		if p.V > peak {
			peak = p.V
		}
	}
	if peak <= 8 {
		t.Fatalf("history peak queue depth = %d, want > threshold 8", peak)
	}

	// (b) the flight recorder holds the ordered fired → resolved pair,
	// selectable with the kind=alert family filter.
	var flightBody struct {
		Events []flight.Event `json:"events"`
	}
	httpJSON(t, srv.URL+"/debug/flight?kind=alert", &flightBody)
	var fired, resolved *flight.Event
	for i := range flightBody.Events {
		ev := &flightBody.Events[i]
		if ev.Stream != "queue-depth" {
			t.Fatalf("foreign event under kind=alert: %+v", ev)
		}
		switch ev.Kind {
		case "alert_fired":
			fired = ev
		case "alert_resolved":
			resolved = ev
		default:
			t.Fatalf("non-alert kind %q under kind=alert filter", ev.Kind)
		}
	}
	if fired == nil || resolved == nil {
		t.Fatalf("missing fired/resolved pair: %+v", flightBody.Events)
	}
	if fired.Seq >= resolved.Seq {
		t.Fatalf("fired seq %d not before resolved seq %d", fired.Seq, resolved.Seq)
	}
	if !strings.Contains(fired.Detail, "critical") || !strings.Contains(fired.Detail, "eventbus.queue_depth > 8") {
		t.Fatalf("fired detail = %q", fired.Detail)
	}
	if fired.Bytes <= 8 {
		t.Fatalf("fired observed value = %d, want > 8", fired.Bytes)
	}

	// (d2) the capture parses as pprof data and sits inside the firing window.
	cp := capIdx.Captures[0]
	if cp.Reason != "alert:queue-depth" {
		t.Fatalf("capture reason = %q", cp.Reason)
	}
	const slack = 500 * time.Millisecond
	if cp.Time.Before(fired.Time.Add(-slack)) || cp.Time.After(resolved.Time.Add(slack)) {
		t.Fatalf("capture at %v outside firing window [%v, %v]", cp.Time, fired.Time, resolved.Time)
	}
	if len(cp.Profiles) == 0 {
		t.Fatalf("capture has no profiles")
	}
	for _, kind := range cp.Profiles {
		resp, err := http.Get(fmt.Sprintf("%s/debug/profiles/%d/%s", srv.URL, cp.ID, kind))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("download %s: status %d err %v", kind, resp.StatusCode, err)
		}
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s profile not gzip-wrapped pprof: %v", kind, err)
		}
		if body, err := io.ReadAll(zr); err != nil || len(body) == 0 {
			t.Fatalf("%s profile empty or corrupt: %v", kind, err)
		}
	}
}

// stallingProxy forwards one TCP connection to target with faultnet latency
// injected on the target-side conn, so everything the broker sends the
// subscriber crawls. Returns the proxy address and an idempotent closer.
func stallingProxy(t *testing.T, target string) (addr string, closeProxy func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		client, err := ln.Accept()
		if err != nil {
			return
		}
		upstream, err := net.Dial("tcp", target)
		if err != nil {
			client.Close()
			return
		}
		conns = append(conns, client, upstream)
		// A handful of clean ops lets the hello/subscribe handshake through,
		// then every operation eats 100ms of injected latency.
		sched := faultnet.NewSchedule(
			faultnet.Fault{}, faultnet.Fault{}, faultnet.Fault{}, faultnet.Fault{},
			faultnet.Fault{}, faultnet.Fault{}, faultnet.Fault{}, faultnet.Fault{},
			faultnet.Fault{Kind: faultnet.Latency, Delay: 100 * time.Millisecond},
		).Loop()
		slow := faultnet.Wrap(upstream, sched)
		go func() { _, _ = io.Copy(slow, client) }()
		_, _ = io.Copy(client, slow)
	}()
	var closed bool
	return ln.Addr().String(), func() {
		if closed {
			return
		}
		closed = true
		_ = ln.Close()
		for _, c := range conns {
			_ = c.Close()
		}
		<-done
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	testutil.WaitFor(t, timeout, what, cond)
}

// httpStatus GETs url and returns the status code.
func httpStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// httpJSON GETs url and decodes the JSON body into v.
func httpJSON(t *testing.T, url string, v interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}
