// Command benchtab regenerates the paper's evaluation artifacts as printed
// tables: Table 1 (format registration costs) plus the quantitative claims
// of §1, §5 and §6 expressed as Tables 2-7 (wire-format comparison, NDR vs
// XDR, end-to-end latency, discovery amortization, receiver conversion, and
// the format-cache ablation). See EXPERIMENTS.md for the paper-vs-measured
// discussion of every table.
//
// Usage:
//
//	benchtab                # all tables, quick configuration
//	benchtab -table 1       # a single table
//	benchtab -full          # slower, tighter medians
package main

import (
	"flag"
	"fmt"
	"os"

	"openmeta/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	table := fs.Int("table", 0, "table number to run (0 = all)")
	full := fs.Bool("full", false, "use the slower, tighter configuration")
	trials := fs.Int("trials", 0, "override trial count")
	msgs := fs.Int("messages", 0, "override message count for end-to-end tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := bench.Quick()
	if *full {
		cfg = bench.Full()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *msgs > 0 {
		cfg.Messages = *msgs
	}

	if *table != 0 {
		gen, ok := bench.ByID(*table)
		if !ok {
			return fmt.Errorf("no such table %d (1-7)", *table)
		}
		tbl, err := gen(cfg)
		if err != nil {
			return err
		}
		return tbl.Write(os.Stdout)
	}
	tables, err := bench.All(cfg)
	if err != nil {
		return err
	}
	for _, tbl := range tables {
		if err := tbl.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
