package main

import (
	"path/filepath"
	"strings"
	"testing"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
)

func writeTestFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.pbio")
	ctx, err := pbio.NewContext(machine.Sparc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterSpec("Evt", []pbio.FieldSpec{
		{Name: "id", Kind: pbio.Int, CType: machine.CInt},
		{Name: "msg", Kind: pbio.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := pbio.CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	for i := 0; i < 3; i++ {
		if err := fw.WriteValue(f, pbio.Record{"id": i + 1, "msg": "hello"}); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestOmcatDefault(t *testing.T) {
	var out strings.Builder
	if err := run([]string{writeTestFile(t)}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		`# format "Evt"`,
		"origin sparc big-endian",
		"Evt: id=1 msg=hello",
		"Evt: id=3 msg=hello",
		"# 3 records, 1 formats",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestOmcatXML(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-xml", writeTestFile(t)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<Evt><id>2</id><msg>hello</msg></Evt>") {
		t.Errorf("output = %s", out.String())
	}
}

func TestOmcatFormats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-formats", writeTestFile(t)}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, `{ "id", "integer", 4, 0 }`) {
		t.Errorf("output = %s", got)
	}
	if strings.Contains(got, "id=1") {
		t.Error("-formats printed record contents")
	}
}

func TestOmcatErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "nope.pbio")}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
