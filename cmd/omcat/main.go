// Command omcat dumps self-describing PBIO record files: the formats they
// carry and the records themselves, decoded through the file's own
// metadata — no schema or program knowledge needed, on any machine,
// regardless of the writer's architecture.
//
// Usage:
//
//	omcat records.pbio             # one line per record
//	omcat -xml records.pbio        # records as XML text messages
//	omcat -formats records.pbio    # only the formats (IOField dump)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlwire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "omcat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("omcat", flag.ContinueOnError)
	asXML := fs.Bool("xml", false, "print records as XML text messages")
	formatsOnly := fs.Bool("formats", false, "print only the file's formats")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: omcat [-xml|-formats] <file.pbio>")
	}
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return err
	}
	fr, err := pbio.OpenFile(fs.Arg(0), ctx)
	if err != nil {
		return err
	}
	defer fr.Close()

	seen := make(map[pbio.FormatID]bool)
	count := 0
	for {
		f, rec, err := fr.ReadValue()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("record %d: %w", count+1, err)
		}
		count++
		if !seen[f.ID] {
			seen[f.ID] = true
			fmt.Fprintf(out, "# format %q (id %s, origin %s %s, %d bytes fixed)\n",
				f.Name, f.ID, f.Arch.Name, f.Arch.Order, f.Size)
			if *formatsOnly {
				for _, io := range f.IOFields() {
					fmt.Fprintf(out, "#   { %q, %q, %d, %d }\n", io.Name, io.Type, io.Size, io.Offset)
				}
			}
		}
		if *formatsOnly {
			continue
		}
		if *asXML {
			text, err := xmlwire.EncodeRecord(f, rec)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s\n", text)
			continue
		}
		fmt.Fprintf(out, "%s: %s\n", f.Name, oneLine(f, rec))
	}
	fmt.Fprintf(out, "# %d records, %d formats\n", count, len(seen))
	return nil
}

// oneLine renders a record compactly with fields in format order.
func oneLine(f *pbio.Format, rec pbio.Record) string {
	keys := make([]string, 0, len(rec))
	for i := range f.Fields {
		if _, ok := rec[f.Fields[i].Name]; ok {
			keys = append(keys, f.Fields[i].Name)
		}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		fi, _ := f.FieldByName(keys[i])
		fj, _ := f.FieldByName(keys[j])
		return fi.Offset < fj.Offset
	})
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", k, rec[k])
	}
	return s
}
