// Command omsub subscribes to event backbone streams and prints arriving
// records, decoding them entirely from the wire's format metadata. With
// -fields it requests a format-scoped slice of the stream (§4.4 of the
// paper): the broker projects every record and hidden fields never arrive.
//
// Usage:
//
//	omsub -broker 127.0.0.1:8701 -stream faa.asd.departures
//	omsub -broker 127.0.0.1:8701 -stream faa.asd.departures -fields cntrID,fltNum
//	omsub -broker 127.0.0.1:8701 -list
//	omsub -broker 127.0.0.1:8701 -stream faa.asd.departures -reconnect
//
// With -reconnect the subscriber survives broker restarts: it redials with
// backoff and replays every subscription, field scopes intact.
//
// With -debug-addr the subscriber serves its own /stats, /debug/trace and
// /debug/flight, and -register <metaserver-url> announces that listener to
// the fleet registry so cmd/omcollect scrapes it (name via -instance,
// default omsub-<host>-<pid>).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"openmeta/internal/discovery"
	"openmeta/internal/eventbus"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/retry"
	"openmeta/internal/trace"
	"openmeta/internal/xmlwire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omsub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("omsub", flag.ContinueOnError)
	broker := fs.String("broker", "127.0.0.1:8701", "broker address")
	stream := fs.String("stream", "", "stream to subscribe to (repeatable via commas)")
	fields := fs.String("fields", "", "comma-separated field scope (format-scoping)")
	list := fs.Bool("list", false, "list streams and exit")
	asXML := fs.Bool("xml", false, "print records as XML text messages")
	count := fs.Int("n", 0, "exit after n records (0 = run until killed)")
	reconnect := fs.Bool("reconnect", false, "redial the broker with backoff when the connection breaks, replaying subscriptions")
	traceSample := fs.Int("trace-sample", 0, "record spans for 1 in N traced records received (1 = all, 0 = tracing off)")
	debugAddr := fs.String("debug-addr", "", "serve /stats, /debug/trace, /debug/flight and /debug/pprof on this address")
	register := fs.String("register", "", "metaserver base URL to self-register the debug endpoint with (fleet discovery for omcollect; needs -debug-addr)")
	instanceName := fs.String("instance", "", "fleet instance name for -register (default omsub-<host>-<pid>)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	trace.Default().SetSampling(*traceSample)
	stopRuntime := obsv.StartRuntimeMetrics(obsv.Default(), time.Second)
	defer stopRuntime()
	if *debugAddr != "" {
		dbg, err := obsv.ListenAndServeDebug(*debugAddr, obsv.Default(),
			obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(trace.Default()),
				Desc: "recent trace spans, oldest first (?since= unix-ns scrape cursor, ?format=chrome)"})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "omsub: stats and pprof at http://%s/stats\n", dbg)
		if *register != "" {
			name := *instanceName
			if name == "" {
				name = discovery.DefaultInstanceName("omsub")
			}
			stopAnnounce, err := discovery.AnnounceInstance(*register, discovery.Instance{
				Name: name, Component: "omsub", DebugAddr: dbg.String(),
			}, 0)
			if err != nil {
				return fmt.Errorf("self-register with %s: %w", *register, err)
			}
			defer stopAnnounce()
		}
	} else if *register != "" {
		return errors.New("-register needs -debug-addr (nothing to scrape otherwise)")
	}
	ctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return err
	}
	var copts []eventbus.ClientOption
	if *reconnect {
		copts = append(copts, eventbus.WithReconnect(retry.Policy{}))
	}
	sub, err := eventbus.DialSubscriber(*broker, ctx, copts...)
	if err != nil {
		return err
	}
	defer sub.Close()

	if *list {
		names, err := sub.Streams()
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}
	if *stream == "" {
		return errors.New("-stream is required (or -list)")
	}
	for _, name := range strings.Split(*stream, ",") {
		if *fields != "" {
			if err := sub.SubscribeFields(name, strings.Split(*fields, ",")...); err != nil {
				return err
			}
		} else if err := sub.Subscribe(name); err != nil {
			return err
		}
	}
	for n := 0; *count == 0 || n < *count; n++ {
		ev, err := sub.Next()
		if err != nil {
			return err
		}
		rec, err := ev.Decode()
		if err != nil {
			return err
		}
		if *asXML {
			text, err := xmlwire.EncodeRecord(ev.Format, rec)
			if err != nil {
				return err
			}
			fmt.Printf("%s %s\n", ev.Stream, text)
			continue
		}
		fmt.Printf("%s [%s] %v\n", ev.Stream, ev.Format.Name, rec)
	}
	return nil
}
