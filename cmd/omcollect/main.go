// Command omcollect is the fleet telemetry aggregator: it discovers the
// processes of one deployment, scrapes each one's debug listener — /stats,
// /debug/trace, /debug/flight, /debug/history — on an interval with
// incremental cursors, and serves the merged result:
//
//	/fleet/members      scrape targets with health and clock hints
//	/fleet/stats        every instance's metrics, instance-labeled, one flat map
//	/fleet/flight       all processes' flight events, one time-ordered stream
//	/fleet/history      merged instance-labeled metrics history
//	/fleet/trace        assembled cross-process traces, newest first
//	/fleet/trace/<id>   one record journey stitched across processes: a
//	                    parent-linked tree with clock-skew estimates and a
//	                    per-stage self-time breakdown summing to 100%
//
// Members are found two ways, freely combined: a static -targets list, and
// the metaserver's fleet registry (-registry), where daemons started with
// -register announce themselves — discovery of *processes* rides the same
// rendezvous as the paper's discovery of formats (§4.4).
//
// Usage:
//
//	omcollect -targets 127.0.0.1:8781,127.0.0.1:8782 -addr 127.0.0.1:8790
//	omcollect -registry 127.0.0.1:8700 -interval 2s
//	omcollect -targets broker=127.0.0.1:8781 -once   # one scrape round, then serve nothing: print members as JSON
//
// A member that stops answering is retried, then flagged stale — its last
// data stays served (fleet.instance.up{instance=...} drops to 0) and it
// recovers in place when the process returns.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"log/slog"

	"openmeta/internal/obsv"
	"openmeta/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omcollect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("omcollect", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8790", "serve the /fleet endpoints on this address")
	targets := fs.String("targets", "", "comma-separated static scrape targets: host:port or name=host:port")
	registry := fs.String("registry", "", "metaserver base URL whose /instances/ listing is scraped for fleet members")
	interval := fs.Duration("interval", telemetry.DefaultInterval, "scrape cadence")
	spanCap := fs.Int("span-cap", telemetry.DefaultSpanCapacity, "spans kept per instance (newest win)")
	flightCap := fs.Int("flight-cap", telemetry.DefaultFlightCapacity, "flight events kept per instance")
	once := fs.Bool("once", false, "run one scrape round, print the member summary as JSON, exit")
	debugAddr := fs.String("debug-addr", "", "serve the collector's own /stats and /debug/pprof on this address")
	logFormat := fs.String("log-format", "text", "diagnostic log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obsv.NewSlog(*logFormat, os.Stderr)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	if *targets == "" && *registry == "" {
		return errors.New("nothing to scrape: pass -targets and/or -registry")
	}

	opts := []telemetry.Option{
		telemetry.WithInterval(*interval),
		telemetry.WithSpanCapacity(*spanCap),
		telemetry.WithFlightCapacity(*flightCap),
		telemetry.WithObserver(obsv.Default()),
	}
	if *registry != "" {
		opts = append(opts, telemetry.WithRegistry(*registry))
	}
	if *targets != "" {
		ts, err := parseTargets(*targets)
		if err != nil {
			return err
		}
		opts = append(opts, telemetry.WithTargets(ts...))
	}
	c := telemetry.New(opts...)

	if *once {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		healthy := c.ScrapeOnce(ctx)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Healthy int                `json:"healthy"`
			Members []telemetry.Member `json:"members"`
		}{healthy, c.Members()}); err != nil {
			return err
		}
		if healthy == 0 {
			return errors.New("no target answered")
		}
		return nil
	}

	if *debugAddr != "" {
		dbg, err := obsv.ListenAndServeDebug(*debugAddr, obsv.Default())
		if err != nil {
			return err
		}
		logger.Info("debug endpoints up", "component", "omcollect", "addr", dbg.String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	c.Start()
	defer c.Stop()
	logger.Info("fleet telemetry up", "component", "omcollect",
		"url", "http://"+ln.Addr().String()+"/fleet",
		"registry", *registry, "targets", *targets, "interval", interval.String())

	mux := http.NewServeMux()
	mux.Handle("/fleet", telemetry.Handler(c))
	mux.Handle("/fleet/", telemetry.Handler(c))
	srv := &http.Server{Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down", "component", "omcollect")
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// parseTargets parses the -targets list: "host:port" entries, optionally
// named as "name=host:port".
func parseTargets(s string) ([]telemetry.Target, error) {
	var out []telemetry.Target
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		t := telemetry.Target{Addr: part}
		if name, addr, ok := strings.Cut(part, "="); ok {
			if name == "" || addr == "" {
				return nil, fmt.Errorf("bad target %q (want name=host:port)", part)
			}
			t = telemetry.Target{Name: name, Addr: addr}
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, errors.New("-targets is empty")
	}
	return out, nil
}
