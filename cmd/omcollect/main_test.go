package main

import (
	"reflect"
	"testing"

	"openmeta/internal/telemetry"
)

func TestParseTargets(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []telemetry.Target
		err  bool
	}{
		{
			name: "bare addresses",
			in:   "127.0.0.1:8781,127.0.0.1:8782",
			want: []telemetry.Target{{Addr: "127.0.0.1:8781"}, {Addr: "127.0.0.1:8782"}},
		},
		{
			name: "named, with spaces and empties",
			in:   " broker=127.0.0.1:8781 ,, pub=127.0.0.1:8782 ",
			want: []telemetry.Target{
				{Name: "broker", Addr: "127.0.0.1:8781"},
				{Name: "pub", Addr: "127.0.0.1:8782"},
			},
		},
		{name: "empty list", in: " , ", err: true},
		{name: "missing address", in: "broker=", err: true},
		{name: "missing name", in: "=127.0.0.1:8781", err: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseTargets(tc.in)
			if tc.err {
				if err == nil {
					t.Fatalf("parseTargets(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parseTargets(%q)\n got %v\nwant %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestRunRequiresAScrapeSource(t *testing.T) {
	if err := run([]string{"-once"}); err == nil {
		t.Error("run with neither -targets nor -registry succeeded")
	}
}
