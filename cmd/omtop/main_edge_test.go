package main

// Table-driven edge-case tests for the stats-view parsing and rendering
// helpers: splitLabels on malformed label blocks, sparklines on degenerate
// histories, and reset markers when a counter goes backwards mid-window.

import (
	"strings"
	"testing"
	"time"
)

func TestSplitLabelsTable(t *testing.T) {
	cases := []struct {
		name, key  string
		wantOK     bool
		wantBase   string
		wantLabels map[string]string
	}{
		{
			name: "single label", key: `evb.records{stream="flights"}`,
			wantOK: true, wantBase: "evb.records",
			wantLabels: map[string]string{"stream": "flights"},
		},
		{
			name: "multiple labels", key: `w{a="1",b="2",c="3"}`,
			wantOK: true, wantBase: "w",
			wantLabels: map[string]string{"a": "1", "b": "2", "c": "3"},
		},
		{
			name: "empty label value", key: `w{a=""}`,
			wantOK: true, wantBase: "w",
			wantLabels: map[string]string{"a": ""},
		},
		{name: "no label block", key: "plain.counter", wantOK: false},
		{name: "empty key", key: "", wantOK: false},
		{name: "empty label block", key: "name{}", wantOK: false},
		{name: "missing closing brace", key: `name{a="b"`, wantOK: false},
		{name: "missing quotes", key: `name{a=b}`, wantOK: false},
		{name: "pair without equals", key: `name{ab}`, wantOK: false},
		{name: "trailing comma", key: `name{a="b",}`, wantOK: false},
		{name: "comma inside value unsupported", key: `name{a="x,y"}`, wantOK: false},
		{name: "brace only suffix", key: "name}", wantOK: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, labels, ok := splitLabels(tc.key)
			if ok != tc.wantOK {
				t.Fatalf("splitLabels(%q) ok = %v, want %v", tc.key, ok, tc.wantOK)
			}
			if !ok {
				return
			}
			if base != tc.wantBase {
				t.Errorf("base = %q, want %q", base, tc.wantBase)
			}
			if len(labels) != len(tc.wantLabels) {
				t.Fatalf("labels = %v, want %v", labels, tc.wantLabels)
			}
			for k, v := range tc.wantLabels {
				if labels[k] != v {
					t.Errorf("label %s = %q, want %q", k, labels[k], v)
				}
			}
		})
	}
}

func TestSparklineTable(t *testing.T) {
	cases := []struct {
		name  string
		vals  []int64
		width int
		want  string
	}{
		{name: "empty history", vals: nil, width: 20, want: ""},
		{name: "empty slice", vals: []int64{}, width: 20, want: ""},
		{name: "zero width", vals: []int64{1, 2}, width: 0, want: ""},
		{name: "negative width", vals: []int64{1, 2}, width: -3, want: ""},
		{name: "single zero sample", vals: []int64{0}, width: 20, want: "▁"},
		{name: "single nonzero sample", vals: []int64{7}, width: 20, want: "▅"},
		{name: "two equal samples", vals: []int64{3, 3}, width: 20, want: "▅▅"},
		{name: "counter reset mid-window", vals: []int64{10, 20, 30, 2, 4}, width: 20, want: "▃▅█▁▁"},
		{name: "negative deltas", vals: []int64{-4, 0, 4}, width: 20, want: "▁▄█"},
		// A width-1 window is a flat series of its newest value, so it
		// renders at mid height like any other flat nonzero series.
		{name: "width one keeps newest", vals: []int64{0, 100}, width: 1, want: "▅"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := sparkline(tc.vals, tc.width); got != tc.want {
				t.Fatalf("sparkline(%v, %d) = %q, want %q", tc.vals, tc.width, got, tc.want)
			}
		})
	}
}

func TestRateCellTable(t *testing.T) {
	cases := []struct {
		name      string
		cur, prev int64
		want      string
	}{
		{name: "steady rate", cur: 20, prev: 10, want: "5.0/s"},
		{name: "no movement", cur: 10, prev: 10, want: "0.0/s"},
		{name: "counter reset mid-window", cur: 3, prev: 1000, want: "reset"},
		{name: "fresh counter", cur: 4, prev: 0, want: "2.0/s"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := rateCell(tc.cur, tc.prev, 2*time.Second)
			if !strings.Contains(got, tc.want) {
				t.Fatalf("rateCell(%d, %d) = %q, want to contain %q",
					tc.cur, tc.prev, got, tc.want)
			}
			if tc.want != "reset" && strings.Contains(got, "-") {
				t.Fatalf("negative rate leaked: %q", got)
			}
		})
	}
}

// TestRenderHistogramFamilyReset: a histogram family whose .count went
// backwards between polls must show the reset marker in its events/s column,
// not a negative rate.
func TestRenderHistogramFamilyReset(t *testing.T) {
	keys := func(count int64) map[string]int64 {
		return map[string]int64{
			"dcg.convert_ns.count": count,
			"dcg.convert_ns.sum":   count * 100,
			"dcg.convert_ns.max":   900,
			"dcg.convert_ns.p50":   100,
			"dcg.convert_ns.p95":   200,
			"dcg.convert_ns.p99":   300,
		}
	}
	out := render("test", keys(50000), keys(12), nil, 2*time.Second, nil)
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "dcg.convert_ns") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("histogram family row missing:\n%s", out)
	}
	if !strings.Contains(line, "reset") {
		t.Fatalf("restarted histogram count not marked reset: %q", line)
	}
}

// TestRenderEmptyHistory: rendering with an empty (but non-nil) history map
// and an empty snapshot must not panic or emit sparkline glyphs.
func TestRenderEmptyHistory(t *testing.T) {
	out := render("test", nil, map[string]int64{"evb.published": 3}, history{}, 0, nil)
	if strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Fatalf("sparkline appeared with empty history:\n%s", out)
	}
	out = render("test", nil, map[string]int64{}, history{"orphan": {1, 2}}, 0, nil)
	if !strings.Contains(out, "omtop") {
		t.Fatalf("header missing on empty snapshot:\n%s", out)
	}
}
