package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmeta/internal/obsv"
)

// statsServer serves a live obsv registry the way a daemon's -debug-addr
// listener does, so omtop is tested against the real /stats shape.
func statsServer(t *testing.T, r *obsv.Registry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(obsv.DebugMux(r))
	t.Cleanup(srv.Close)
	return srv
}

func TestFetchStats(t *testing.T) {
	r := obsv.New()
	r.Counter("evb.published").Add(42)
	r.Gauge("evb.queue_depth").Set(7)
	srv := statsServer(t, r)

	snap, err := fetchStats(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if snap["evb.published"] != 42 || snap["evb.queue_depth"] != 7 {
		t.Fatalf("unexpected snapshot: %v", snap)
	}
}

func TestFetchStatsErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if _, err := fetchStats(srv.URL + "/stats"); err == nil {
		t.Fatal("expected error for 404 response")
	}
}

func TestRenderRatesAndHistograms(t *testing.T) {
	prev := map[string]int64{
		"evb.published": 100,
		"lat.count":     10, "lat.sum": 1000, "lat.max": 200,
		"lat.p50": 90, "lat.p95": 180, "lat.p99": 195,
	}
	cur := map[string]int64{
		"evb.published": 150,
		"lat.count":     20, "lat.sum": 2000, "lat.max": 256,
		"lat.p50": 100, "lat.p95": 200, "lat.p99": 250,
	}
	out := render("test", prev, cur, 2*time.Second)

	if !strings.Contains(out, "evb.published") || !strings.Contains(out, "25.0/s") {
		t.Fatalf("counter rate missing from output:\n%s", out)
	}
	// The histogram family must collapse to one line with its quantiles, not
	// six scalar lines.
	if strings.Contains(out, "lat.p50") {
		t.Fatalf("histogram keys leaked as scalars:\n%s", out)
	}
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "lat ") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no collapsed histogram line for lat:\n%s", out)
	}
	for _, want := range []string{"100", "200", "250", "256", "5.0"} {
		if !strings.Contains(line, want) {
			t.Fatalf("histogram line missing %q: %q", want, line)
		}
	}
}

func TestRenderOnceUsesAbsoluteValues(t *testing.T) {
	cur := map[string]int64{"a": 5}
	out := render("test", nil, cur, 0)
	if !strings.Contains(out, "5") || strings.Contains(out, "/s") {
		t.Fatalf("once mode should print absolute values only:\n%s", out)
	}
}

func TestRunOnceAgainstLiveServer(t *testing.T) {
	r := obsv.New()
	r.Counter("pbio.encode.calls").Add(3)
	r.Histogram("dcg.plan.compile_ns").Observe(1500)
	srv := statsServer(t, r)

	var buf bytes.Buffer
	if err := run([]string{"-addr", srv.URL, "-once"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pbio.encode.calls") {
		t.Fatalf("missing counter in output:\n%s", out)
	}
	if !strings.Contains(out, "dcg.plan.compile_ns") {
		t.Fatalf("missing histogram family in output:\n%s", out)
	}
}

func TestRunPollsForNRefreshes(t *testing.T) {
	r := obsv.New()
	c := r.Counter("ticks")
	srv := statsServer(t, r)
	go func() {
		for range [100]struct{}{} {
			c.Inc()
			time.Sleep(time.Millisecond)
		}
	}()

	var buf bytes.Buffer
	err := run([]string{"-addr", srv.URL, "-interval", "30ms", "-n", "2", "-clear=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "omtop"); n != 2 {
		t.Fatalf("want 2 refresh headers, got %d:\n%s", n, buf.String())
	}
}
