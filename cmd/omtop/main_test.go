package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"openmeta/internal/obsv"
)

// statsServer serves a live obsv registry the way a daemon's -debug-addr
// listener does, so omtop is tested against the real /stats shape.
func statsServer(t *testing.T, r *obsv.Registry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(obsv.DebugMux(r))
	t.Cleanup(srv.Close)
	return srv
}

func TestFetchStats(t *testing.T) {
	r := obsv.New()
	r.Counter("evb.published").Add(42)
	r.Gauge("evb.queue_depth").Set(7)
	srv := statsServer(t, r)

	snap, err := fetchStats(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if snap["evb.published"] != 42 || snap["evb.queue_depth"] != 7 {
		t.Fatalf("unexpected snapshot: %v", snap)
	}
}

func TestFetchStatsErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if _, err := fetchStats(srv.URL + "/stats"); err == nil {
		t.Fatal("expected error for 404 response")
	}
}

func TestRenderRatesAndHistograms(t *testing.T) {
	prev := map[string]int64{
		"evb.published": 100,
		"lat.count":     10, "lat.sum": 1000, "lat.max": 200,
		"lat.p50": 90, "lat.p95": 180, "lat.p99": 195,
	}
	cur := map[string]int64{
		"evb.published": 150,
		"lat.count":     20, "lat.sum": 2000, "lat.max": 256,
		"lat.p50": 100, "lat.p95": 200, "lat.p99": 250,
	}
	out := render("test", prev, cur, nil, 2*time.Second, nil)

	if !strings.Contains(out, "evb.published") || !strings.Contains(out, "25.0/s") {
		t.Fatalf("counter rate missing from output:\n%s", out)
	}
	// The histogram family must collapse to one line with its quantiles, not
	// six scalar lines.
	if strings.Contains(out, "lat.p50") {
		t.Fatalf("histogram keys leaked as scalars:\n%s", out)
	}
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "lat ") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no collapsed histogram line for lat:\n%s", out)
	}
	for _, want := range []string{"100", "200", "250", "256", "5.0"} {
		if !strings.Contains(line, want) {
			t.Fatalf("histogram line missing %q: %q", want, line)
		}
	}
}

func TestRenderOnceUsesAbsoluteValues(t *testing.T) {
	cur := map[string]int64{"a": 5}
	out := render("test", nil, cur, nil, 0, nil)
	if !strings.Contains(out, "5") || strings.Contains(out, "/s") {
		t.Fatalf("once mode should print absolute values only:\n%s", out)
	}
}

func TestRunOnceAgainstLiveServer(t *testing.T) {
	r := obsv.New()
	r.Counter("pbio.encode.calls").Add(3)
	r.Histogram("dcg.plan.compile_ns").Observe(1500)
	srv := statsServer(t, r)

	var buf bytes.Buffer
	if err := run([]string{"-addr", srv.URL, "-once"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pbio.encode.calls") {
		t.Fatalf("missing counter in output:\n%s", out)
	}
	if !strings.Contains(out, "dcg.plan.compile_ns") {
		t.Fatalf("missing histogram family in output:\n%s", out)
	}
}

func TestSplitLabels(t *testing.T) {
	base, labels, ok := splitLabels(`eventbus.wire.records{stream="flights",format="ASDOffEvent"}`)
	if !ok || base != "eventbus.wire.records" {
		t.Fatalf("base = %q, ok = %v", base, ok)
	}
	if labels["stream"] != "flights" || labels["format"] != "ASDOffEvent" {
		t.Fatalf("labels = %v", labels)
	}
	if _, _, ok := splitLabels("plain.counter"); ok {
		t.Fatal("unlabeled key parsed as labeled")
	}
}

func TestRenderFormatsAggregatesPerFormat(t *testing.T) {
	prev := map[string]int64{
		`pbio.format.encoded.records{format="ASDOffEvent"}`:      100,
		`pbio.format.encoded.bytes{format="ASDOffEvent"}`:        4000,
		`eventbus.wire.records{stream="a",format="ASDOffEvent"}`: 50,
		`eventbus.wire.records{stream="b",format="ASDOffEvent"}`: 50,
		`pbio.format.meta.bytes{format="ASDOffEvent"}`:           321,
		`pbio.format.xml.expansion_pct{format="ASDOffEvent"}`:    662,
		`pbio.format.decoded.records{format="CheckinEvent"}`:     10,
	}
	cur := map[string]int64{
		`pbio.format.encoded.records{format="ASDOffEvent"}`:      200,
		`pbio.format.encoded.bytes{format="ASDOffEvent"}`:        8000,
		`eventbus.wire.records{stream="a",format="ASDOffEvent"}`: 80,
		`eventbus.wire.records{stream="b",format="ASDOffEvent"}`: 120,
		`pbio.format.meta.bytes{format="ASDOffEvent"}`:           321,
		`pbio.format.xml.expansion_pct{format="ASDOffEvent"}`:    662,
		`pbio.format.decoded.records{format="CheckinEvent"}`:     30,
		"plain.counter": 5,
	}
	out := renderFormats("test", prev, cur, nil, 2*time.Second, nil)

	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "ASDOffEvent") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no row for ASDOffEvent:\n%s", out)
	}
	// 100 encodes / 2s = 50/s; bus records sum across both streams:
	// (80+120)-(50+50) = 100 / 2s = 50/s; metadata bytes absolute; the
	// expansion gauge prints as a ratio.
	for _, want := range []string{"50.0", "2000.0", "321", "6.62x"} {
		if !strings.Contains(line, want) {
			t.Fatalf("format row missing %q: %q", want, line)
		}
	}
	if !strings.Contains(out, "CheckinEvent") {
		t.Fatalf("second format missing:\n%s", out)
	}
	if strings.Contains(out, "plain.counter") {
		t.Fatalf("unlabeled key leaked into formats view:\n%s", out)
	}
}

func TestRenderFormatsOnceShowsTotals(t *testing.T) {
	cur := map[string]int64{
		`pbio.format.encoded.records{format="X"}`: 7,
	}
	out := renderFormats("test", nil, cur, nil, 0, nil)
	if !strings.Contains(out, "enc total") || !strings.Contains(out, "7.0") {
		t.Fatalf("once mode should print absolute totals:\n%s", out)
	}
}

func TestRenderFormatsEmpty(t *testing.T) {
	out := renderFormats("test", nil, map[string]int64{"plain": 1}, nil, 0, nil)
	if !strings.Contains(out, "no labeled per-format series") {
		t.Fatalf("empty formats view should say so:\n%s", out)
	}
}

func TestRunPollsForNRefreshes(t *testing.T) {
	r := obsv.New()
	c := r.Counter("ticks")
	srv := statsServer(t, r)
	go func() {
		for range [100]struct{}{} {
			c.Inc()
			time.Sleep(time.Millisecond)
		}
	}()

	var buf bytes.Buffer
	err := run([]string{"-addr", srv.URL, "-interval", "30ms", "-n", "2", "-clear=false"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "omtop"); n != 2 {
		t.Fatalf("want 2 refresh headers, got %d:\n%s", n, buf.String())
	}
}

// TestRenderCounterReset simulates a daemon restart between polls: the
// counter went backwards, so the rate cell must read "reset", not a negative
// rate — and other rows must be unaffected.
func TestRenderCounterReset(t *testing.T) {
	prev := map[string]int64{"evb.published": 100000, "evb.other": 10}
	cur := map[string]int64{"evb.published": 42, "evb.other": 30}
	out := render("test", prev, cur, nil, 2*time.Second, nil)

	resetLine := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "evb.published") {
			resetLine = l
		}
	}
	if !strings.Contains(resetLine, "reset") {
		t.Fatalf("restarted counter not marked reset: %q", resetLine)
	}
	if strings.Contains(resetLine, "-") {
		t.Fatalf("negative rate leaked: %q", resetLine)
	}
	if !strings.Contains(out, "10.0/s") {
		t.Fatalf("healthy counter's rate missing:\n%s", out)
	}
	// Next interval the baseline is the post-restart value again.
	out = render("test", cur, map[string]int64{"evb.published": 62, "evb.other": 50}, nil, 2*time.Second, nil)
	if strings.Contains(out, "reset") {
		t.Fatalf("reset marker persisted past the restart interval:\n%s", out)
	}
}

// TestRenderFormatsCounterReset: the formats view clamps a restarted
// counter's rate at zero rather than printing a negative rate.
func TestRenderFormatsCounterReset(t *testing.T) {
	prev := map[string]int64{`pbio.format.encoded.records{format="X"}`: 100000}
	cur := map[string]int64{`pbio.format.encoded.records{format="X"}`: 6}
	out := renderFormats("test", prev, cur, nil, 2*time.Second, nil)
	if regexp.MustCompile(`-\d`).MatchString(out) {
		t.Fatalf("negative rate leaked across restart:\n%s", out)
	}
	if !strings.Contains(out, "0.0") {
		t.Fatalf("clamped rate missing:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]int64{0, 1, 2, 3, 4, 5, 6, 7}, 20); got != "▁▂▃▄▅▆▇█" {
		t.Fatalf("ramp sparkline = %q", got)
	}
	if got := sparkline([]int64{5, 5, 5}, 20); got != "▅▅▅" {
		t.Fatalf("flat nonzero sparkline = %q (want mid-height)", got)
	}
	if got := sparkline([]int64{0, 0}, 20); got != "▁▁" {
		t.Fatalf("all-zero sparkline = %q", got)
	}
	// Window: only the last width values are drawn.
	vals := make([]int64, 30)
	for i := range vals {
		vals[i] = int64(i)
	}
	if got := sparkline(vals, 5); len([]rune(got)) != 5 {
		t.Fatalf("windowed sparkline = %q", got)
	}
	if sparkline(nil, 20) != "" || sparkline([]int64{1}, 0) != "" {
		t.Fatal("degenerate sparklines must be empty")
	}
}

func TestRenderSparklinesFromHistory(t *testing.T) {
	cur := map[string]int64{"evb.queue_depth": 9}
	hist := history{"evb.queue_depth": {0, 2, 4, 9}}
	out := render("test", nil, cur, hist, 0, nil)
	if !strings.Contains(out, "▁") || !strings.Contains(out, "█") {
		t.Fatalf("sparkline missing from row:\n%s", out)
	}
	// No history → no sparkline, and nothing breaks.
	out = render("test", nil, cur, nil, 0, nil)
	if strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Fatalf("sparkline appeared without history:\n%s", out)
	}
}

// TestFetchHistory exercises the real decode path against a fake
// /debug/history endpoint, including the best-effort failure modes.
func TestFetchHistory(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		_, _ = w.Write([]byte(`{"interval_ms":5000,"ticks":3,"capacity":720,
			"series":{"evb.published":{"kind":"counter","points":[{"t":1,"v":10},{"t":2,"v":20}]}}}`))
	}))
	defer srv.Close()
	h := fetchHistory(srv.URL)
	if len(h["evb.published"]) != 2 || h["evb.published"][1] != 20 {
		t.Fatalf("fetchHistory = %v", h)
	}

	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		http.Error(w, "history disabled", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	if h := fetchHistory(down.URL); h != nil {
		t.Fatalf("disabled history must yield nil, got %v", h)
	}
	if h := fetchHistory("http://127.0.0.1:1/nope"); h != nil {
		t.Fatalf("unreachable history must yield nil, got %v", h)
	}
}

// TestRenderExemplarColumn covers the -exemplars decoration: histogram rows
// gain an ex=<short TraceID> cell fed by /stats?exemplars=1, scalars never
// do, and the worst (highest) bucket's exemplar wins.
func TestRenderExemplarColumn(t *testing.T) {
	histFam := map[string]int64{
		"rt.ns.count": 10, "rt.ns.sum": 1000, "rt.ns.max": 500,
		"rt.ns.p50": 80, "rt.ns.p95": 300, "rt.ns.p99": 450,
		"evb.published": 7,
	}
	low := obsv.Exemplar{Bucket: 7, Value: 100, TraceID: strings.Repeat("aa", 16), TimeUnixNS: 1}
	high := obsv.Exemplar{Bucket: 9, Value: 450, TraceID: strings.Repeat("bc", 16), TimeUnixNS: 2}
	for _, tc := range []struct {
		name string
		ex   exemplars
		want []string
		not  []string
	}{
		{
			name: "nil map leaves rows bare",
			ex:   nil,
			not:  []string{"ex="},
		},
		{
			name: "worst bucket exemplar rendered short",
			ex:   exemplars{"rt.ns": {low, high}},
			want: []string{"ex=" + strings.Repeat("bc", 8)},
			not:  []string{strings.Repeat("bc", 16), strings.Repeat("aa", 8)},
		},
		{
			name: "exemplars for unknown families ignored",
			ex:   exemplars{"other.ns": {high}},
			not:  []string{"ex="},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out := render("test", nil, histFam, nil, 0, tc.ex)
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
			for _, n := range tc.not {
				if strings.Contains(out, n) {
					t.Errorf("output should not contain %q:\n%s", n, out)
				}
			}
		})
	}
}

// TestShortTrace pins the display abbreviation.
func TestShortTrace(t *testing.T) {
	for in, want := range map[string]string{
		strings.Repeat("ab", 16): strings.Repeat("ab", 8),
		"deadbeef":               "deadbeef",
		"":                       "",
	} {
		if got := shortTrace(in); got != want {
			t.Errorf("shortTrace(%q) = %q, want %q", in, got, want)
		}
	}
}
