// Command omtop is a live terminal viewer for a daemon's /stats endpoint —
// top for the event backbone. Point it at any openmeta daemon started with
// -debug-addr (eventbusd, metaserver, ompub) and it polls the JSON snapshot,
// printing per-second rates for counters and p50/p95/p99 latencies for
// histograms:
//
//	omtop -addr 127.0.0.1:8781
//	omtop -addr http://127.0.0.1:8781 -interval 1s
//	omtop -addr 127.0.0.1:8781 -once        # one snapshot, no rates
//	omtop -addr 127.0.0.1:8781 -n 5         # five refreshes, then exit
//
// Counters display as rate-per-second computed from consecutive snapshots;
// gauges display as their current value; a histogram named h collapses the
// h.count/.sum/.p50/.p95/.p99 keys into one line with the event rate,
// quantiles and max. A counter that moved backwards between polls (the
// daemon restarted) shows "reset" for that interval instead of a bogus
// negative rate. When the daemon also serves /debug/history (started with
// -history-interval), each row gains a unicode sparkline of its recent
// samples from the daemon's own ring — trend context without omtop having
// to watch for long.
//
// With -formats the display pivots to per-format wire accounting instead:
// one row per format label found in the snapshot's labeled families
// (pbio.format.* and eventbus.wire.*), with encode/decode rates, bus
// record/byte rates, metadata bytes and the live NDR-to-XML-text expansion
// ratio.
//
// With -contention the display pivots to the runtime & contention view:
// every tracked lock's acquire count and wait/hold quantiles, plus — when
// the daemon runs with -contention-rate — the hottest mutex/block profile
// sites with per-refresh deltas. It reads /debug/contention per daemon, or
// /fleet/contention when -addr is an omcollect /fleet URL. Metric families
// and endpoints omtop doesn't recognize are skipped, not fatal, so it can
// watch daemons newer or older than itself.
//
// omtop also watches a whole fleet. -addr accepts a comma-separated list of
// debug addresses (optionally named, name=host:port), polled and merged
// client-side, or a single omcollect /fleet URL, in which case the collector
// does the merging. Either way the default view pivots to one column per
// instance:
//
//	omtop -addr pub=127.0.0.1:8781,broker=127.0.0.1:8782
//	omtop -addr http://127.0.0.1:8790/fleet
//
// Instances that stop answering keep their column (values freeze, the
// fleet.instance.up row drops to 0) instead of disappearing mid-watch.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"openmeta/internal/obsv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "omtop:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("omtop", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8781", "daemon debug address (host:port or http://host:port)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	n := fs.Int("n", 0, "exit after n refreshes (0 = run until killed)")
	once := fs.Bool("once", false, "print one snapshot and exit (no rates)")
	clear := fs.Bool("clear", true, "clear the terminal between refreshes")
	formats := fs.Bool("formats", false, "show the per-format wire accounting view")
	contention := fs.Bool("contention", false, "show the tracked-lock and runtime contention view (/debug/contention, or /fleet/contention via omcollect)")
	showEx := fs.Bool("exemplars", false, "append each histogram's worst trace exemplar (short TraceID) to its row (single-daemon view)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets, err := parseAddrList(*addr)
	if err != nil {
		return err
	}
	fleet := len(targets) > 1 || strings.Contains(targets[0].base, "/fleet")

	if *contention {
		return runContention(targets, fleet, *interval, *n, *once, *clear, out)
	}

	view := render
	if *formats {
		view = renderFormats
	} else if fleet {
		view = renderFleet
	}
	var url, histURL string
	fetch := fetchStats
	switch {
	case !fleet:
		url = targets[0].base + "/stats"
		histURL = targets[0].base + "/debug/history"
	case len(targets) == 1:
		// One omcollect URL: the collector already merged and labeled.
		url = targets[0].base + "/stats"
		histURL = targets[0].base + "/history"
	default:
		// Several daemons: poll each and merge client-side, exactly the way
		// omcollect labels its /fleet/stats. url is only a display name.
		url = *addr
		fetch = func(string) (map[string]int64, error) { return fetchFleet(targets) }
	}

	// Exemplars only decorate the single-daemon view; the client-side fleet
	// merge has no single URL to re-fetch the rich shape from.
	getEx := func() exemplars { return nil }
	if *showEx && !fleet {
		getEx = func() exemplars { return fetchExemplars(url) }
	}

	prev, err := fetch(url)
	if err != nil {
		return err
	}
	if *once {
		fmt.Fprint(out, view(url, nil, prev, fetchHistory(histURL), 0, getEx()))
		return nil
	}
	for i := 0; *n == 0 || i < *n; i++ {
		time.Sleep(*interval)
		cur, err := fetch(url)
		if err != nil {
			return err
		}
		if *clear {
			fmt.Fprint(out, "\x1b[2J\x1b[H")
		}
		fmt.Fprint(out, view(url, prev, cur, fetchHistory(histURL), *interval, getEx()))
		prev = cur
	}
	return nil
}

func fetchStats(url string) (map[string]int64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	return snap, nil
}

// history holds each /debug/history series' recent values, oldest first.
type history map[string][]int64

// fetchHistory pulls the daemon's sampled metric history. Best-effort: any
// failure (endpoint absent, history disabled, bad JSON) returns nil and the
// display simply has no sparklines.
func fetchHistory(url string) history {
	resp, err := http.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Series map[string]struct {
			Points []struct {
				V int64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	h := make(history, len(body.Series))
	for name, s := range body.Series {
		vals := make([]int64, len(s.Points))
		for i, p := range s.Points {
			vals[i] = p.V
		}
		h[name] = vals
	}
	return h
}

// exemplars maps a histogram family (or labeled child) name to its bucket
// exemplars, lowest bucket first — the shape of /stats?exemplars=1.
type exemplars map[string][]obsv.Exemplar

// fetchExemplars pulls the daemon's trace exemplars. Best-effort like
// fetchHistory: a daemon predating exemplar support (or one started with
// -exemplars=false) simply yields rows without the ex column.
func fetchExemplars(url string) exemplars {
	resp, err := http.Get(url + "?exemplars=1")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body obsv.StatsWithExemplars
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	return body.Exemplars
}

// shortTrace abbreviates a 32-hex TraceID to its 16-hex prefix for display;
// the full ID is one curl of /stats?exemplars=1 away.
func shortTrace(tid string) string {
	if len(tid) > 16 {
		return tid[:16]
	}
	return tid
}

// sparkBlocks are the eight block heights a sparkline cell can take.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width values as unicode blocks, scaled between
// the window's min and max (a flat non-zero series renders mid-height so it
// reads as "steady", an all-zero one as the floor).
func sparkline(vals []int64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		switch {
		case hi == lo && hi == 0:
			out[i] = sparkBlocks[0]
		case hi == lo:
			out[i] = sparkBlocks[len(sparkBlocks)/2]
		default:
			idx := int((v - lo) * int64(len(sparkBlocks)-1) / (hi - lo))
			out[i] = sparkBlocks[idx]
		}
	}
	return string(out)
}

// sparkWidth is how many history samples a row's sparkline shows.
const sparkWidth = 20

// rateCell formats the per-second rate column, or "reset" when the counter
// moved backwards between polls — the daemon restarted, so the delta for
// this interval is meaningless.
func rateCell(cur, prev int64, elapsed time.Duration) string {
	if cur < prev {
		return fmt.Sprintf("%12s", "reset")
	}
	return fmt.Sprintf("%10.1f/s", perSecond(cur-prev, elapsed))
}

// histSuffixes are the snapshot keys a histogram named h expands to; their
// shared base name identifies a histogram family in the flat snapshot.
var histSuffixes = []string{".count", ".sum", ".max", ".p50", ".p95", ".p99"}

// render formats one refresh. With prev == nil (the -once path) counters
// print as absolute values; otherwise they print as per-second rates over
// elapsed. hist (may be nil) adds a per-row sparkline of the daemon's own
// sampled history; ex (may be nil) adds each histogram family's worst trace
// exemplar as a short TraceID.
func render(source string, prev, cur map[string]int64, hist history, elapsed time.Duration, ex exemplars) string {
	hists := map[string]bool{}
	for k := range cur {
		if base, ok := histBase(k, cur); ok {
			hists[base] = true
		}
	}

	var scalars []string
	for k := range cur {
		if _, ok := histBase(k, cur); ok {
			continue
		}
		scalars = append(scalars, k)
	}
	sort.Strings(scalars)
	families := make([]string, 0, len(hists))
	for b := range hists {
		families = append(families, b)
	}
	sort.Strings(families)

	var b strings.Builder
	fmt.Fprintf(&b, "omtop  %s  %s\n\n", source, time.Now().Format("15:04:05"))
	for _, k := range scalars {
		spark := ""
		if s := sparkline(hist[k], sparkWidth); s != "" {
			spark = "  " + s
		}
		if prev == nil {
			fmt.Fprintf(&b, "%-44s %12d%s\n", k, cur[k], spark)
			continue
		}
		fmt.Fprintf(&b, "%-44s %12d %s%s\n", k, cur[k], rateCell(cur[k], prev[k], elapsed), spark)
	}
	if len(families) > 0 {
		fmt.Fprintf(&b, "\n%-44s %10s %10s %10s %10s %10s\n",
			"histogram", "events/s", "p50", "p95", "p99", "max")
		for _, base := range families {
			rate := fmt.Sprintf("%10.1f", float64(cur[base+".count"]))
			if prev != nil {
				rate = strings.TrimSuffix(rateCell(cur[base+".count"], prev[base+".count"], elapsed), "/s")
			}
			spark := ""
			// The daemon's history ring stores the histogram count as the
			// per-interval delta series <base>.count.
			if s := sparkline(hist[base+".count"], sparkWidth); s != "" {
				spark = "  " + s
			}
			exCell := ""
			// Bucket exemplars come lowest bucket first, so the last one is
			// the worst traced sample the family has seen.
			if exs := ex[base]; len(exs) > 0 {
				exCell = "  ex=" + shortTrace(exs[len(exs)-1].TraceID)
			}
			fmt.Fprintf(&b, "%-44s %10s %10d %10d %10d %10d%s%s\n",
				base, rate, cur[base+".p50"], cur[base+".p95"], cur[base+".p99"], cur[base+".max"], exCell, spark)
		}
	}
	return b.String()
}

// splitLabels splits a labeled snapshot key like `name{k="v",k2="v2"}` into
// the bare family name and its label values. Keys without a label block
// return ok = false.
func splitLabels(key string) (base string, labels map[string]string, ok bool) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return "", nil, false
	}
	labels = make(map[string]string)
	for _, pair := range strings.Split(key[i+1:len(key)-1], ",") {
		eq := strings.Index(pair, `="`)
		if eq < 0 || !strings.HasSuffix(pair, `"`) {
			return "", nil, false
		}
		labels[pair[:eq]] = pair[eq+2 : len(pair)-1]
	}
	return key[:i], labels, true
}

// fmtRow aggregates one format's numbers across the labeled wire-accounting
// families. Eventbus values are summed across streams.
type fmtRow struct {
	encRecs, encBytes int64
	decRecs, decBytes int64
	busRecs, busBytes int64
	pbioMeta, busMeta int64
	expansionPct      int64
	hasExpansion      bool
}

func formatRows(snap map[string]int64) map[string]*fmtRow {
	rows := make(map[string]*fmtRow)
	for k, v := range snap {
		base, labels, ok := splitLabels(k)
		if !ok || labels["format"] == "" {
			continue
		}
		r := rows[labels["format"]]
		if r == nil {
			r = &fmtRow{}
			rows[labels["format"]] = r
		}
		switch base {
		case "pbio.format.encoded.records":
			r.encRecs += v
		case "pbio.format.encoded.bytes":
			r.encBytes += v
		case "pbio.format.decoded.records":
			r.decRecs += v
		case "pbio.format.decoded.bytes":
			r.decBytes += v
		case "pbio.format.meta.bytes":
			r.pbioMeta += v
		case "pbio.format.xml.expansion_pct":
			r.expansionPct = v
			r.hasExpansion = true
		case "eventbus.wire.records":
			r.busRecs += v
		case "eventbus.wire.bytes":
			r.busBytes += v
		case "eventbus.wire.meta.bytes":
			r.busMeta += v
		}
	}
	return rows
}

// renderFormats formats the per-format wire accounting view: one row per
// format label seen in the snapshot. With prev == nil counter columns show
// absolute totals; otherwise per-second rates over elapsed (clamped at 0
// across a daemon restart). Metadata bytes come from the codec-side family
// when present, falling back to the broker's wire.meta.bytes; the ndr:xml
// column is the live expansion-ratio gauge. The history parameter is
// unused — sparklines only appear in the default view.
func renderFormats(source string, prev, cur map[string]int64, _ history, elapsed time.Duration, _ exemplars) string {
	rows := formatRows(cur)
	var prevRows map[string]*fmtRow
	if prev != nil {
		prevRows = formatRows(prev)
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "omtop formats  %s  %s\n\n", source, time.Now().Format("15:04:05"))
	if len(names) == 0 {
		b.WriteString("no labeled per-format series in this snapshot\n")
		return b.String()
	}
	unit := "/s"
	if prevRows == nil {
		unit = " total"
	}
	fmt.Fprintf(&b, "%-24s %11s %11s %11s %11s %11s %11s %8s %8s\n", "format",
		"enc"+unit, "enc B"+unit, "dec"+unit, "dec B"+unit,
		"bus"+unit, "bus B"+unit, "meta B", "ndr:xml")
	for _, name := range names {
		r := rows[name]
		p := &fmtRow{}
		if prevRows != nil {
			if pr := prevRows[name]; pr != nil {
				p = pr
			}
		}
		val := func(cur, prev int64) float64 {
			if prevRows == nil {
				return float64(cur)
			}
			if cur < prev {
				return 0 // counter reset (daemon restart): no negative rates
			}
			return perSecond(cur-prev, elapsed)
		}
		meta := r.pbioMeta
		if meta == 0 {
			meta = r.busMeta
		}
		xml := "-"
		if r.hasExpansion {
			xml = fmt.Sprintf("%.2fx", float64(r.expansionPct)/100)
		}
		fmt.Fprintf(&b, "%-24s %11.1f %11.1f %11.1f %11.1f %11.1f %11.1f %8d %8s\n",
			name,
			val(r.encRecs, p.encRecs), val(r.encBytes, p.encBytes),
			val(r.decRecs, p.decRecs), val(r.decBytes, p.decBytes),
			val(r.busRecs, p.busRecs), val(r.busBytes, p.busBytes),
			meta, xml)
	}
	return b.String()
}

// histBase reports whether key belongs to a histogram family — it carries
// one of the histogram suffixes and the snapshot holds all six sibling keys
// for the same base name.
func histBase(key string, snap map[string]int64) (string, bool) {
	for _, s := range histSuffixes {
		if !strings.HasSuffix(key, s) {
			continue
		}
		base := strings.TrimSuffix(key, s)
		all := true
		for _, s2 := range histSuffixes {
			if _, ok := snap[base+s2]; !ok {
				all = false
				break
			}
		}
		if all {
			return base, true
		}
	}
	return "", false
}

func perSecond(delta int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(delta) / elapsed.Seconds()
}

// addrTarget is one entry of the -addr list: a display name and the
// normalized http base URL of a debug listener (or omcollect /fleet root).
type addrTarget struct {
	name string
	base string
}

// parseAddrList splits the -addr flag: one or more comma-separated entries,
// each "host:port", "http://host:port[/fleet]" or "name=host:port".
func parseAddrList(s string) ([]addrTarget, error) {
	var out []addrTarget
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		t := addrTarget{base: part}
		if name, addr, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			if name == "" || addr == "" {
				return nil, fmt.Errorf("bad -addr entry %q (want name=host:port)", part)
			}
			t = addrTarget{name: name, base: addr}
		}
		if !strings.Contains(t.base, "://") {
			t.base = "http://" + t.base
		}
		t.base = strings.TrimRight(t.base, "/")
		if t.name == "" {
			t.name = strings.TrimPrefix(strings.TrimPrefix(t.base, "http://"), "https://")
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, errors.New("-addr is empty")
	}
	return out, nil
}

// fetchFleet polls every target's /stats and merges the snapshots under
// instance labels, mirroring omcollect's /fleet/stats shape: the same
// renderer handles both. A target that fails to answer contributes only
// fleet.instance.up = 0, keeping its column alive; only all targets failing
// is an error.
func fetchFleet(targets []addrTarget) (map[string]int64, error) {
	merged := make(map[string]int64)
	healthy := 0
	var lastErr error
	for _, t := range targets {
		snap, err := fetchStats(t.base + "/stats")
		up := int64(0)
		if err == nil {
			obsv.MergeLabeled(merged, snap, "instance", t.name)
			up = 1
			healthy++
		} else {
			lastErr = err
		}
		merged[obsv.AddLabel("fleet.instance.up", "", "instance", t.name)] = up
	}
	if healthy == 0 {
		return nil, fmt.Errorf("no fleet target answered: %w", lastErr)
	}
	return merged, nil
}

// stripInstance removes the instance label from a merged snapshot key,
// returning the de-labeled row key and the instance value ("" when the key
// carries no instance label). Histogram children keep their terminal suffix:
// `h{instance="x"}.count` becomes row `h.count` of instance x.
func stripInstance(key string) (row, instance string) {
	i := strings.IndexByte(key, '{')
	j := strings.IndexByte(key, '}')
	if i < 0 || j < i {
		return key, ""
	}
	var rest []string
	for _, pair := range strings.Split(key[i+1:j], ",") {
		if v, ok := strings.CutPrefix(pair, `instance="`); ok && strings.HasSuffix(v, `"`) {
			instance = strings.TrimSuffix(v, `"`)
			continue
		}
		rest = append(rest, pair)
	}
	row = key[:i]
	if len(rest) > 0 {
		row += "{" + strings.Join(rest, ",") + "}"
	}
	return row + key[j+1:], instance
}

// fleetCol is the width of one instance column in the fleet view.
const fleetCol = 22

// renderFleet formats one refresh of an instance-labeled merged snapshot
// (omcollect's /fleet/stats, or fetchFleet's client-side merge) as one
// column per instance. Scalar rows show the current value, plus its
// per-second rate once two snapshots exist; histogram families collapse to
// one row per base name showing events/s (or total count with -once) and
// p99. Cells for metrics an instance never reported show "-". The history
// parameter is unused — sparklines only appear in the single-daemon view.
func renderFleet(source string, prev, cur map[string]int64, _ history, elapsed time.Duration, _ exemplars) string {
	type perInst map[string]map[string]int64 // instance → row → value
	split := func(snap map[string]int64) perInst {
		out := perInst{}
		for k, v := range snap {
			row, inst := stripInstance(k)
			if out[inst] == nil {
				out[inst] = map[string]int64{}
			}
			out[inst][row] = v
		}
		return out
	}
	curBy := split(cur)
	var prevBy perInst
	if prev != nil {
		prevBy = split(prev)
	}

	instances := make([]string, 0, len(curBy))
	for inst := range curBy {
		instances = append(instances, inst)
	}
	sort.Strings(instances)

	// Row set: union across instances, histogram families collapsed.
	rowSet := map[string]bool{}
	famSet := map[string]bool{}
	for _, rows := range curBy {
		for row := range rows {
			if base, ok := histBase(row, rows); ok {
				famSet[base] = true
				continue
			}
			rowSet[row] = true
		}
	}
	// A family complete on one instance may be partial on another; keep its
	// children out of the scalar rows either way.
	isChild := func(row string) bool {
		for _, s := range histSuffixes {
			if famSet[strings.TrimSuffix(row, s)] && strings.HasSuffix(row, s) {
				return true
			}
		}
		return false
	}
	scalars := make([]string, 0, len(rowSet))
	for r := range rowSet {
		if !isChild(r) {
			scalars = append(scalars, r)
		}
	}
	sort.Strings(scalars)
	families := make([]string, 0, len(famSet))
	for f := range famSet {
		families = append(families, f)
	}
	sort.Strings(families)

	col := func(s string) string {
		if len(s) > fleetCol {
			s = s[:fleetCol]
		}
		return fmt.Sprintf("%*s", fleetCol, s)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "omtop fleet  %s  %s\n\n", source, time.Now().Format("15:04:05"))
	b.WriteString(fmt.Sprintf("%-40s", "metric"))
	for _, inst := range instances {
		name := inst
		if name == "" {
			name = "(unlabeled)"
		}
		b.WriteString(col(name))
	}
	b.WriteString("\n")
	for _, row := range scalars {
		fmt.Fprintf(&b, "%-40s", row)
		for _, inst := range instances {
			v, ok := curBy[inst][row]
			if !ok {
				b.WriteString(col("-"))
				continue
			}
			cell := fmt.Sprintf("%d", v)
			if prevBy != nil {
				if pv, had := prevBy[inst][row]; had {
					cell += " " + strings.TrimSpace(rateCell(v, pv, elapsed))
				}
			}
			b.WriteString(col(cell))
		}
		b.WriteString("\n")
	}
	if len(families) > 0 {
		header := "histogram (events/s, p99)"
		if prevBy == nil {
			header = "histogram (count, p99)" // -once shows totals, not rates
		}
		fmt.Fprintf(&b, "\n%-40s", header)
		for _, inst := range instances {
			name := inst
			if name == "" {
				name = "(unlabeled)"
			}
			b.WriteString(col(name))
		}
		b.WriteString("\n")
		for _, base := range families {
			fmt.Fprintf(&b, "%-40s", base)
			for _, inst := range instances {
				rows := curBy[inst]
				if _, ok := rows[base+".count"]; !ok {
					b.WriteString(col("-"))
					continue
				}
				count := fmt.Sprintf("%d", rows[base+".count"])
				if prevBy != nil {
					count = strings.TrimSpace(strings.TrimSuffix(
						rateCell(rows[base+".count"], prevBy[inst][base+".count"], elapsed), "/s"))
				}
				b.WriteString(col(fmt.Sprintf("%s, %d", count, rows[base+".p99"])))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
