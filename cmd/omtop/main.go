// Command omtop is a live terminal viewer for a daemon's /stats endpoint —
// top for the event backbone. Point it at any openmeta daemon started with
// -debug-addr (eventbusd, metaserver, ompub) and it polls the JSON snapshot,
// printing per-second rates for counters and p50/p95/p99 latencies for
// histograms:
//
//	omtop -addr 127.0.0.1:8781
//	omtop -addr http://127.0.0.1:8781 -interval 1s
//	omtop -addr 127.0.0.1:8781 -once        # one snapshot, no rates
//	omtop -addr 127.0.0.1:8781 -n 5         # five refreshes, then exit
//
// Counters display as rate-per-second computed from consecutive snapshots;
// gauges display as their current value; a histogram named h collapses the
// h.count/.sum/.p50/.p95/.p99 keys into one line with the event rate,
// quantiles and max. A counter that moved backwards between polls (the
// daemon restarted) shows "reset" for that interval instead of a bogus
// negative rate. When the daemon also serves /debug/history (started with
// -history-interval), each row gains a unicode sparkline of its recent
// samples from the daemon's own ring — trend context without omtop having
// to watch for long.
//
// With -formats the display pivots to per-format wire accounting instead:
// one row per format label found in the snapshot's labeled families
// (pbio.format.* and eventbus.wire.*), with encode/decode rates, bus
// record/byte rates, metadata bytes and the live NDR-to-XML-text expansion
// ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "omtop:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("omtop", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8781", "daemon debug address (host:port or http://host:port)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	n := fs.Int("n", 0, "exit after n refreshes (0 = run until killed)")
	once := fs.Bool("once", false, "print one snapshot and exit (no rates)")
	clear := fs.Bool("clear", true, "clear the terminal between refreshes")
	formats := fs.Bool("formats", false, "show the per-format wire accounting view")
	if err := fs.Parse(args); err != nil {
		return err
	}
	view := render
	if *formats {
		view = renderFormats
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	url := base + "/stats"
	histURL := base + "/debug/history"

	prev, err := fetchStats(url)
	if err != nil {
		return err
	}
	if *once {
		fmt.Fprint(out, view(url, nil, prev, fetchHistory(histURL), 0))
		return nil
	}
	for i := 0; *n == 0 || i < *n; i++ {
		time.Sleep(*interval)
		cur, err := fetchStats(url)
		if err != nil {
			return err
		}
		if *clear {
			fmt.Fprint(out, "\x1b[2J\x1b[H")
		}
		fmt.Fprint(out, view(url, prev, cur, fetchHistory(histURL), *interval))
		prev = cur
	}
	return nil
}

func fetchStats(url string) (map[string]int64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snap map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("GET %s: %w", url, err)
	}
	return snap, nil
}

// history holds each /debug/history series' recent values, oldest first.
type history map[string][]int64

// fetchHistory pulls the daemon's sampled metric history. Best-effort: any
// failure (endpoint absent, history disabled, bad JSON) returns nil and the
// display simply has no sparklines.
func fetchHistory(url string) history {
	resp, err := http.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Series map[string]struct {
			Points []struct {
				V int64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	h := make(history, len(body.Series))
	for name, s := range body.Series {
		vals := make([]int64, len(s.Points))
		for i, p := range s.Points {
			vals[i] = p.V
		}
		h[name] = vals
	}
	return h
}

// sparkBlocks are the eight block heights a sparkline cell can take.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width values as unicode blocks, scaled between
// the window's min and max (a flat non-zero series renders mid-height so it
// reads as "steady", an all-zero one as the floor).
func sparkline(vals []int64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		switch {
		case hi == lo && hi == 0:
			out[i] = sparkBlocks[0]
		case hi == lo:
			out[i] = sparkBlocks[len(sparkBlocks)/2]
		default:
			idx := int((v - lo) * int64(len(sparkBlocks)-1) / (hi - lo))
			out[i] = sparkBlocks[idx]
		}
	}
	return string(out)
}

// sparkWidth is how many history samples a row's sparkline shows.
const sparkWidth = 20

// rateCell formats the per-second rate column, or "reset" when the counter
// moved backwards between polls — the daemon restarted, so the delta for
// this interval is meaningless.
func rateCell(cur, prev int64, elapsed time.Duration) string {
	if cur < prev {
		return fmt.Sprintf("%12s", "reset")
	}
	return fmt.Sprintf("%10.1f/s", perSecond(cur-prev, elapsed))
}

// histSuffixes are the snapshot keys a histogram named h expands to; their
// shared base name identifies a histogram family in the flat snapshot.
var histSuffixes = []string{".count", ".sum", ".max", ".p50", ".p95", ".p99"}

// render formats one refresh. With prev == nil (the -once path) counters
// print as absolute values; otherwise they print as per-second rates over
// elapsed. hist (may be nil) adds a per-row sparkline of the daemon's own
// sampled history.
func render(source string, prev, cur map[string]int64, hist history, elapsed time.Duration) string {
	hists := map[string]bool{}
	for k := range cur {
		if base, ok := histBase(k, cur); ok {
			hists[base] = true
		}
	}

	var scalars []string
	for k := range cur {
		if _, ok := histBase(k, cur); ok {
			continue
		}
		scalars = append(scalars, k)
	}
	sort.Strings(scalars)
	families := make([]string, 0, len(hists))
	for b := range hists {
		families = append(families, b)
	}
	sort.Strings(families)

	var b strings.Builder
	fmt.Fprintf(&b, "omtop  %s  %s\n\n", source, time.Now().Format("15:04:05"))
	for _, k := range scalars {
		spark := ""
		if s := sparkline(hist[k], sparkWidth); s != "" {
			spark = "  " + s
		}
		if prev == nil {
			fmt.Fprintf(&b, "%-44s %12d%s\n", k, cur[k], spark)
			continue
		}
		fmt.Fprintf(&b, "%-44s %12d %s%s\n", k, cur[k], rateCell(cur[k], prev[k], elapsed), spark)
	}
	if len(families) > 0 {
		fmt.Fprintf(&b, "\n%-44s %10s %10s %10s %10s %10s\n",
			"histogram", "events/s", "p50", "p95", "p99", "max")
		for _, base := range families {
			rate := fmt.Sprintf("%10.1f", float64(cur[base+".count"]))
			if prev != nil {
				rate = strings.TrimSuffix(rateCell(cur[base+".count"], prev[base+".count"], elapsed), "/s")
			}
			spark := ""
			// The daemon's history ring stores the histogram count as the
			// per-interval delta series <base>.count.
			if s := sparkline(hist[base+".count"], sparkWidth); s != "" {
				spark = "  " + s
			}
			fmt.Fprintf(&b, "%-44s %10s %10d %10d %10d %10d%s\n",
				base, rate, cur[base+".p50"], cur[base+".p95"], cur[base+".p99"], cur[base+".max"], spark)
		}
	}
	return b.String()
}

// splitLabels splits a labeled snapshot key like `name{k="v",k2="v2"}` into
// the bare family name and its label values. Keys without a label block
// return ok = false.
func splitLabels(key string) (base string, labels map[string]string, ok bool) {
	i := strings.IndexByte(key, '{')
	if i < 0 || !strings.HasSuffix(key, "}") {
		return "", nil, false
	}
	labels = make(map[string]string)
	for _, pair := range strings.Split(key[i+1:len(key)-1], ",") {
		eq := strings.Index(pair, `="`)
		if eq < 0 || !strings.HasSuffix(pair, `"`) {
			return "", nil, false
		}
		labels[pair[:eq]] = pair[eq+2 : len(pair)-1]
	}
	return key[:i], labels, true
}

// fmtRow aggregates one format's numbers across the labeled wire-accounting
// families. Eventbus values are summed across streams.
type fmtRow struct {
	encRecs, encBytes int64
	decRecs, decBytes int64
	busRecs, busBytes int64
	pbioMeta, busMeta int64
	expansionPct      int64
	hasExpansion      bool
}

func formatRows(snap map[string]int64) map[string]*fmtRow {
	rows := make(map[string]*fmtRow)
	for k, v := range snap {
		base, labels, ok := splitLabels(k)
		if !ok || labels["format"] == "" {
			continue
		}
		r := rows[labels["format"]]
		if r == nil {
			r = &fmtRow{}
			rows[labels["format"]] = r
		}
		switch base {
		case "pbio.format.encoded.records":
			r.encRecs += v
		case "pbio.format.encoded.bytes":
			r.encBytes += v
		case "pbio.format.decoded.records":
			r.decRecs += v
		case "pbio.format.decoded.bytes":
			r.decBytes += v
		case "pbio.format.meta.bytes":
			r.pbioMeta += v
		case "pbio.format.xml.expansion_pct":
			r.expansionPct = v
			r.hasExpansion = true
		case "eventbus.wire.records":
			r.busRecs += v
		case "eventbus.wire.bytes":
			r.busBytes += v
		case "eventbus.wire.meta.bytes":
			r.busMeta += v
		}
	}
	return rows
}

// renderFormats formats the per-format wire accounting view: one row per
// format label seen in the snapshot. With prev == nil counter columns show
// absolute totals; otherwise per-second rates over elapsed (clamped at 0
// across a daemon restart). Metadata bytes come from the codec-side family
// when present, falling back to the broker's wire.meta.bytes; the ndr:xml
// column is the live expansion-ratio gauge. The history parameter is
// unused — sparklines only appear in the default view.
func renderFormats(source string, prev, cur map[string]int64, _ history, elapsed time.Duration) string {
	rows := formatRows(cur)
	var prevRows map[string]*fmtRow
	if prev != nil {
		prevRows = formatRows(prev)
	}
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "omtop formats  %s  %s\n\n", source, time.Now().Format("15:04:05"))
	if len(names) == 0 {
		b.WriteString("no labeled per-format series in this snapshot\n")
		return b.String()
	}
	unit := "/s"
	if prevRows == nil {
		unit = " total"
	}
	fmt.Fprintf(&b, "%-24s %11s %11s %11s %11s %11s %11s %8s %8s\n", "format",
		"enc"+unit, "enc B"+unit, "dec"+unit, "dec B"+unit,
		"bus"+unit, "bus B"+unit, "meta B", "ndr:xml")
	for _, name := range names {
		r := rows[name]
		p := &fmtRow{}
		if prevRows != nil {
			if pr := prevRows[name]; pr != nil {
				p = pr
			}
		}
		val := func(cur, prev int64) float64 {
			if prevRows == nil {
				return float64(cur)
			}
			if cur < prev {
				return 0 // counter reset (daemon restart): no negative rates
			}
			return perSecond(cur-prev, elapsed)
		}
		meta := r.pbioMeta
		if meta == 0 {
			meta = r.busMeta
		}
		xml := "-"
		if r.hasExpansion {
			xml = fmt.Sprintf("%.2fx", float64(r.expansionPct)/100)
		}
		fmt.Fprintf(&b, "%-24s %11.1f %11.1f %11.1f %11.1f %11.1f %11.1f %8d %8s\n",
			name,
			val(r.encRecs, p.encRecs), val(r.encBytes, p.encBytes),
			val(r.decRecs, p.decRecs), val(r.decBytes, p.decBytes),
			val(r.busRecs, p.busRecs), val(r.busBytes, p.busBytes),
			meta, xml)
	}
	return b.String()
}

// histBase reports whether key belongs to a histogram family — it carries
// one of the histogram suffixes and the snapshot holds all six sibling keys
// for the same base name.
func histBase(key string, snap map[string]int64) (string, bool) {
	for _, s := range histSuffixes {
		if !strings.HasSuffix(key, s) {
			continue
		}
		base := strings.TrimSuffix(key, s)
		all := true
		for _, s2 := range histSuffixes {
			if _, ok := snap[base+s2]; !ok {
				all = false
				break
			}
		}
		if all {
			return base, true
		}
	}
	return "", false
}

func perSecond(delta int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(delta) / elapsed.Seconds()
}
