package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmeta/internal/obsv"
)

// TestRenderToleratesUnknownFamilies: daemons now export metric families omtop
// predates (runtime bridge gauges, labeled queue-wait children, tracked-lock
// histograms). Every view must render them or skip them — never error.
func TestRenderToleratesUnknownFamilies(t *testing.T) {
	cur := map[string]int64{
		"runtime.goroutines":       37,
		"runtime.heap.alloc_bytes": 1 << 20,
		"runtime.gc.pause_ns.count": 4, "runtime.gc.pause_ns.sum": 400000,
		"runtime.gc.pause_ns.max": 200000, "runtime.gc.pause_ns.p50": 80000,
		"runtime.gc.pause_ns.p95": 150000, "runtime.gc.pause_ns.p99": 190000,
		`eventbus.subscriber.queue_wait_ns{conn="3"}.count`: 12,
		`eventbus.subscriber.queue_wait_ns{conn="3"}.sum`:   24000,
		`eventbus.subscriber.queue_wait_ns{conn="3"}.max`:   9000,
		`eventbus.subscriber.queue_wait_ns{conn="3"}.p50`:   1000,
		`eventbus.subscriber.queue_wait_ns{conn="3"}.p95`:   4000,
		`eventbus.subscriber.queue_wait_ns{conn="3"}.p99`:   8000,
		"eventbus.broker_mu.wait_ns.count":                  5,
		// A deliberately partial family: siblings missing, must fall back to
		// scalar rendering rather than failing the histogram collapse.
		"mystery.metric.p99": 123,
	}
	for name, fn := range map[string]func(string, map[string]int64, history, time.Duration, exemplars) string{
		"render":        func(s string, c map[string]int64, h history, d time.Duration, e exemplars) string { return render(s, nil, c, h, d, e) },
		"renderFleet":   func(s string, c map[string]int64, h history, d time.Duration, e exemplars) string { return renderFleet(s, nil, c, h, d, e) },
		"renderFormats": func(s string, c map[string]int64, h history, d time.Duration, e exemplars) string { return renderFormats(s, nil, c, h, d, e) },
	} {
		out := fn("test", cur, nil, 0, nil)
		if name != "renderFormats" && !strings.Contains(out, "runtime.goroutines") {
			t.Fatalf("%s dropped the runtime gauge:\n%s", name, out)
		}
		if strings.Contains(out, "runtime.gc.pause_ns.p50") {
			t.Fatalf("%s leaked histogram siblings as scalars:\n%s", name, out)
		}
	}
}

// TestRunContentionOnce drives -contention against a live /debug/contention
// endpoint and checks the tracked-lock table shows up.
func TestRunContentionOnce(t *testing.T) {
	r := obsv.New()
	m := obsv.NewTrackedMutex("broker_mu", r.Scope("eventbus"))
	m.Lock()
	m.Unlock() //nolint:staticcheck // recording one acquisition is the point

	srv := httptest.NewServer(obsv.ContentionHandler(r))
	defer srv.Close()

	var buf bytes.Buffer
	err := runContention([]addrTarget{{name: "broker", base: srv.URL}}, false, time.Second, 1, true, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "eventbus.broker_mu") {
		t.Fatalf("contention view missing tracked lock:\n%s", out)
	}
}

// TestRunContentionUnreachable: a dead or profile-less target yields a notice
// line, not an error — the graceful-degradation contract.
func TestRunContentionUnreachable(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // dead target

	var buf bytes.Buffer
	err := runContention([]addrTarget{{name: "gone", base: srv.URL}}, false, time.Second, 1, true, false, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gone") {
		t.Fatalf("expected a per-target notice naming the dead target:\n%s", buf.String())
	}
}
