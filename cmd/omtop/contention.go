package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"openmeta/internal/obsv"
)

// The -contention view: tracked-lock wait/hold tables plus the hottest
// runtime mutex/block profile sites, from a daemon's /debug/contention or —
// when -addr points at an omcollect /fleet URL — the collector's merged
// /fleet/contention. Sources that do not serve the endpoint (an older build,
// a daemon that is down) render a one-line notice and are skipped rather
// than failing the whole view, so a mixed-version fleet stays watchable.

// contentionSource is one place to fetch a contention snapshot from.
type contentionSource struct {
	name string
	url  string
}

func runContention(targets []addrTarget, fleet bool, interval time.Duration, n int, once, clear bool, out io.Writer) error {
	collector := fleet && len(targets) == 1
	var sources []contentionSource
	if collector {
		sources = []contentionSource{{name: targets[0].name, url: targets[0].base + "/contention"}}
	} else {
		for _, t := range targets {
			sources = append(sources, contentionSource{name: t.name, url: t.base + "/debug/contention"})
		}
	}
	refresh := func() {
		if clear && !once {
			fmt.Fprint(out, "\x1b[2J\x1b[H")
		}
		fmt.Fprintf(out, "omtop -contention  %s\n", time.Now().Format("15:04:05"))
		for _, src := range sources {
			fmt.Fprint(out, fetchContention(src, collector))
		}
	}
	refresh()
	if once {
		return nil
	}
	for i := 1; n == 0 || i < n; i++ {
		time.Sleep(interval)
		refresh()
	}
	return nil
}

// fetchContention fetches and renders one source, degrading to a notice line
// on any failure (unreachable, non-200, undecodable).
func fetchContention(src contentionSource, collector bool) string {
	resp, err := http.Get(src.url)
	if err != nil {
		return fmt.Sprintf("\n%s: contention endpoint unavailable (%v)\n", src.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("\n%s: contention endpoint unavailable (HTTP %d)\n", src.name, resp.StatusCode)
	}
	if collector {
		var fleet struct {
			Instances map[string]obsv.ContentionSnapshot `json:"instances"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
			return fmt.Sprintf("\n%s: bad contention body (%v)\n", src.name, err)
		}
		if len(fleet.Instances) == 0 {
			return fmt.Sprintf("\n%s: no instances report contention yet\n", src.name)
		}
		names := make([]string, 0, len(fleet.Instances))
		for name := range fleet.Instances {
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, name := range names {
			b.WriteString(renderContention(name, fleet.Instances[name]))
		}
		return b.String()
	}
	var snap obsv.ContentionSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Sprintf("\n%s: bad contention body (%v)\n", src.name, err)
	}
	return renderContention(src.name, snap)
}

// renderContention formats one instance's snapshot: the tracked locks first
// (always present — they need no profiling rate), then the top runtime
// profile sites when the daemon runs with -contention-rate.
func renderContention(name string, snap obsv.ContentionSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n%s  (mutex fraction %d, block rate %dns)\n",
		name, snap.MutexProfileFraction, snap.BlockProfileRateNS)
	if len(snap.Locks) == 0 {
		fmt.Fprint(&b, "  no tracked locks\n")
	} else {
		fmt.Fprintf(&b, "  %-28s %10s %10s %10s %10s %10s %10s\n",
			"tracked lock", "acquires", "wait p50", "wait p99", "wait max", "hold p99", "rwait p99")
		for _, l := range snap.Locks {
			rwait := "-"
			if l.RWait != nil {
				rwait = fmt.Sprint(l.RWait.P99NS)
			}
			fmt.Fprintf(&b, "  %-28s %10d %10d %10d %10d %10d %10s\n",
				l.Name, l.Wait.Count, l.Wait.P50NS, l.Wait.P99NS, l.Wait.MaxNS, l.Hold.P99NS, rwait)
		}
	}
	b.WriteString(renderSites("mutex sites", snap.Mutex))
	b.WriteString(renderSites("block sites", snap.Block))
	return b.String()
}

func renderSites(title string, sites []obsv.ContentionSite) string {
	if len(sites) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-52s %10s %8s %14s %12s\n", title, "count", "Δcount", "cycles", "Δcycles")
	for i, s := range sites {
		if i >= 10 {
			fmt.Fprintf(&b, "  … %d more\n", len(sites)-i)
			break
		}
		fmt.Fprintf(&b, "  %-52s %10d %8d %14d %12d\n", s.Site, s.Count, s.CountDelta, s.Cycles, s.CyclesDelta)
	}
	return b.String()
}
