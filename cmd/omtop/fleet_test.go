package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseAddrList(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []addrTarget
		err  bool
	}{
		{
			name: "single bare host:port",
			in:   "127.0.0.1:8781",
			want: []addrTarget{{name: "127.0.0.1:8781", base: "http://127.0.0.1:8781"}},
		},
		{
			name: "single omcollect fleet URL",
			in:   "http://127.0.0.1:8790/fleet",
			want: []addrTarget{{name: "127.0.0.1:8790/fleet", base: "http://127.0.0.1:8790/fleet"}},
		},
		{
			name: "named list",
			in:   "pub=127.0.0.1:8781,broker=127.0.0.1:8782",
			want: []addrTarget{
				{name: "pub", base: "http://127.0.0.1:8781"},
				{name: "broker", base: "http://127.0.0.1:8782"},
			},
		},
		{
			name: "mixed named and bare with spaces",
			in:   " pub=127.0.0.1:8781 , 127.0.0.1:8782 ",
			want: []addrTarget{
				{name: "pub", base: "http://127.0.0.1:8781"},
				{name: "127.0.0.1:8782", base: "http://127.0.0.1:8782"},
			},
		},
		{name: "empty", in: " , ", err: true},
		{name: "bad named entry", in: "pub=", err: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseAddrList(tc.in)
			if tc.err {
				if err == nil {
					t.Fatalf("parseAddrList(%q) = %v, want error", tc.in, got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parseAddrList(%q)\n got %v\nwant %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestStripInstance(t *testing.T) {
	cases := []struct {
		key, row, instance string
	}{
		{`eventbus.published{instance="pub"}`, "eventbus.published", "pub"},
		{`pbio.encode_ns{instance="broker"}.count`, "pbio.encode_ns.count", "broker"},
		{`eventbus.wire.records{format="F",instance="pub"}`, `eventbus.wire.records{format="F"}`, "pub"},
		{`eventbus.wire.records{instance="pub",stream="s"}`, `eventbus.wire.records{stream="s"}`, "pub"},
		{"plain.counter", "plain.counter", ""},
		{`labeled{stream="s"}`, `labeled{stream="s"}`, ""},
	}
	for _, tc := range cases {
		row, inst := stripInstance(tc.key)
		if row != tc.row || inst != tc.instance {
			t.Errorf("stripInstance(%q) = (%q, %q), want (%q, %q)", tc.key, row, inst, tc.row, tc.instance)
		}
	}
}

func TestRenderFleetColumns(t *testing.T) {
	cur := map[string]int64{
		`eventbus.published{instance="pub"}`:    120,
		`eventbus.published{instance="broker"}`: 115,
		`eventbus.delivered{instance="sub"}`:    110,
		`fleet.instance.up{instance="pub"}`:     1,
		`fleet.instance.up{instance="broker"}`:  1,
		`fleet.instance.up{instance="sub"}`:     0,
	}
	for k, v := range map[string]int64{
		".count": 120, ".sum": 1200, ".max": 901, ".p50": 1, ".p95": 2, ".p99": 900,
	} {
		cur[`pbio.encode_ns{instance="pub"}`+k] = v
	}
	prev := map[string]int64{
		`eventbus.published{instance="pub"}`:    100,
		`eventbus.published{instance="broker"}`: 125, // moved backwards: restart
	}

	cases := []struct {
		name    string
		prev    map[string]int64
		want    []string
		notWant []string
	}{
		{
			name: "once shows absolute values per instance column",
			prev: nil,
			want: []string{
				"broker", "pub", "sub", // all three instance columns
				"eventbus.published", "eventbus.delivered",
				"120", "115", "110",
				"histogram (count, p99)",
				"120, 900", // pub's histogram cell
				"-",        // instances without the metric
			},
			notWant: []string{"/s"},
		},
		{
			name: "rates once two snapshots exist, reset on backwards counter",
			prev: prev,
			want: []string{
				"120 10.0/s", // pub: (120-100)/2s
				"115 reset",  // broker restarted
				"histogram (events/s, p99)",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := renderFleet("test", tc.prev, cur, nil, 2*time.Second, nil)
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
			for _, nw := range tc.notWant {
				if strings.Contains(out, nw) {
					t.Errorf("output unexpectedly contains %q:\n%s", nw, out)
				}
			}
		})
	}
}

func TestRenderFleetHistogramChildrenCollapsed(t *testing.T) {
	cur := map[string]int64{}
	for k, v := range map[string]int64{
		".count": 5, ".sum": 50, ".max": 9, ".p50": 1, ".p95": 2, ".p99": 3,
	} {
		cur[`h{instance="a"}`+k] = v
	}
	// Partial family on a second instance must not resurrect scalar rows.
	cur[`h{instance="b"}.count`] = 2
	out := renderFleet("test", nil, cur, nil, 0, nil)
	if strings.Contains(out, "h.count") || strings.Contains(out, "h.p50") {
		t.Errorf("histogram children leaked into scalar rows:\n%s", out)
	}
	if !strings.Contains(out, "5, 3") {
		t.Errorf("collapsed histogram cell missing:\n%s", out)
	}
}

func TestFetchFleetMergesAndFlagsDeadTargets(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(map[string]int64{"eventbus.published": 7})
	}))
	defer alive.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // already dead

	snap, err := fetchFleet([]addrTarget{
		{name: "pub", base: alive.URL},
		{name: "broker", base: dead.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := snap[`eventbus.published{instance="pub"}`]; got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := snap[`fleet.instance.up{instance="pub"}`]; got != 1 {
		t.Errorf("up{pub} = %d, want 1", got)
	}
	if got := snap[`fleet.instance.up{instance="broker"}`]; got != 0 {
		t.Errorf("up{broker} = %d, want 0", got)
	}

	// Every target dead is an error — there is nothing left to render.
	if _, err := fetchFleet([]addrTarget{{name: "broker", base: dead.URL}}); err == nil {
		t.Error("fetchFleet with all targets dead returned no error")
	}
}

func TestRunFleetOnceEndToEnd(t *testing.T) {
	stats := func(m map[string]int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/stats" {
				http.NotFound(w, r)
				return
			}
			json.NewEncoder(w).Encode(m)
		}))
	}
	pub := stats(map[string]int64{"eventbus.published": 42})
	defer pub.Close()
	broker := stats(map[string]int64{"eventbus.routed": 41})
	defer broker.Close()

	var out bytes.Buffer
	err := run([]string{"-once", "-addr",
		"pub=" + strings.TrimPrefix(pub.URL, "http://") + ",broker=" + strings.TrimPrefix(broker.URL, "http://")},
		&out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"omtop fleet", "pub", "broker", "eventbus.published", "42", "eventbus.routed", "41"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fleet -once output missing %q:\n%s", want, out.String())
		}
	}
}
