// Command xml2wire is the paper's tool as a CLI: it discovers XML Schema
// message metadata (from a file or a URL), binds it to a target
// architecture, and dumps the resulting PBIO metadata — the IOField lists of
// the paper's Figures 5, 8 and 11 — plus layout and format-ID information.
//
// Usage:
//
//	xml2wire -file schema.xsd [-arch x86-64] [-verbose]
//	xml2wire -url http://host/schemas/ASDOffEvent
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"openmeta/internal/core"
	"openmeta/internal/discovery"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xmlschema"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "xml2wire:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("xml2wire", flag.ContinueOnError)
	file := fs.String("file", "", "schema document on the local file system")
	url := fs.String("url", "", "schema document URL (remote discovery)")
	archName := fs.String("arch", machine.Native.Name,
		fmt.Sprintf("target architecture %v", machine.ArchNames()))
	verbose := fs.Bool("verbose", false, "also print layout details and wire metadata size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*file == "") == (*url == "") {
		return errors.New("exactly one of -file or -url is required")
	}
	arch, err := machine.ArchByName(*archName)
	if err != nil {
		return err
	}

	var schema *xmlschema.Schema
	switch {
	case *file != "":
		raw, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		schema, err = xmlschema.ParseString(string(raw))
		if err != nil {
			return err
		}
	default:
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		schema, err = discovery.FetchURL(ctx, nil, *url)
		if err != nil {
			return err
		}
	}

	pctx, err := pbio.NewContext(arch)
	if err != nil {
		return err
	}
	set, err := core.RegisterSchema(pctx, schema)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "arch: %s (%s, %d-byte pointers)\n\n",
		arch.Name, arch.Order, arch.PointerSize)
	for _, f := range set.Formats {
		fmt.Fprintf(out, "IOField %sFields[] = {\n", f.Name)
		for _, io := range f.IOFields() {
			fmt.Fprintf(out, "    { %q, %q, %d, %d },\n", io.Name, io.Type, io.Size, io.Offset)
		}
		fmt.Fprintf(out, "};\n")
		fmt.Fprintf(out, "/* sizeof(%s) = %d, align %d, format id %s */\n\n",
			f.Name, f.Size, f.Align, f.ID)
		if *verbose {
			meta := pbio.MarshalMeta(f)
			fmt.Fprintf(out, "/* wire metadata: %d bytes */\n\n", len(meta))
		}
	}
	return nil
}
