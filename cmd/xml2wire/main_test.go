package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openmeta/internal/discovery"
)

const testSchema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>`

func writeSchema(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "s.xsd")
	if err := os.WriteFile(path, []byte(testSchema), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFile(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-file", writeSchema(t), "-arch", "sparc", "-verbose"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"arch: sparc (big-endian, 4-byte pointers)",
		`IOField ASDOffEventFields[] = {`,
		`{ "cntrID", "string", 4, 0 }`,
		`{ "eta", "unsigned integer[eta_count]", 4, 8 }`,
		`{ "eta_count", "integer", 4, 12 }`,
		"sizeof(ASDOffEvent) = 16",
		"wire metadata:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunURL(t *testing.T) {
	repo := discovery.NewRepository()
	if err := repo.Put("ASDOffEvent", testSchema); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	var out strings.Builder
	err := run([]string{"-url", srv.URL + "/schemas/ASDOffEvent", "-arch", "x86-64"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "little-endian, 8-byte pointers") {
		t.Errorf("output = %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no source flags accepted")
	}
	if err := run([]string{"-file", "x", "-url", "y"}, &out); err == nil {
		t.Error("both source flags accepted")
	}
	if err := run([]string{"-file", writeSchema(t), "-arch", "vax"}, &out); err == nil {
		t.Error("unknown arch accepted")
	}
	if err := run([]string{"-file", filepath.Join(t.TempDir(), "missing.xsd")}, &out); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.xsd")
	if err := os.WriteFile(bad, []byte("<junk/>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", bad}, &out); err == nil {
		t.Error("invalid schema accepted")
	}
}
