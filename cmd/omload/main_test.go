package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openmeta/internal/loadgen"
)

// TestRunSmoke is the acceptance check in miniature: a short run against the
// in-process broker must print percentiles and a stage share breakdown that
// sums to ~100%, and -out must emit JSON that parses back into a report.
func TestRunSmoke(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "run.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-duration", "250ms", "-rate", "2000", "-sample", "4",
		"-scoped", "1", "-out", outPath,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	text := stdout.String()
	for _, want := range []string{"p50", "p95", "p99", "p999", "stage share", "published", "delivered"} {
		if !strings.Contains(text, want) {
			t.Errorf("table output missing %q:\n%s", want, text)
		}
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-out JSON does not parse: %v", err)
	}
	if rep.Schema != loadgen.ReportSchema || rep.Delivered == 0 {
		t.Fatalf("-out report incomplete: %+v", rep)
	}
	var sum float64
	for _, st := range rep.Stages {
		sum += st.SharePct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("stage shares sum to %.2f%%, want ~100%%", sum)
	}
}

func TestRunJSONFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-duration", "150ms", "-rate", "1000", "-format", "json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var rep loadgen.Report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if rep.Published == 0 {
		t.Fatal("JSON report shows nothing published")
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"positional args", []string{"extra"}},
		{"bad format", []string{"-duration", "50ms", "-format", "yaml"}},
		{"bad chaos", []string{"-duration", "50ms", "-chaos", "hurricane"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code == 0 {
				t.Fatalf("args %v: expected nonzero exit, stderr: %s", tc.args, stderr.String())
			}
		})
	}
}

func TestRunHelp(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h must exit 0, got %d", code)
	}
	if !strings.Contains(stderr.String(), "Open-loop load harness") {
		t.Errorf("usage text missing:\n%s", stderr.String())
	}
}
