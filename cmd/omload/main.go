// Command omload is the open-loop load harness: it drives concurrent
// publishers and a mix of plain / scoped / converting subscribers against an
// in-process or remote broker at a configured arrival rate, measures true
// end-to-end latency from a publish timestamp carried in every record, and
// reports percentiles, throughput, drops and the traced stage-share
// breakdown (encode / publish / route / convert / deliver).
//
//	omload -duration 5s -rate 5000 -pubs 2 -subs 2 -scoped 1 -converting 1
//	omload -addr host:5600 -duration 10s -format json -out run.json
//	omload -chaos latency -duration 5s
//
// With no -addr, omload starts its own broker in process, which also enables
// broker-side drop counters and routing spans in the report.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"openmeta/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("omload", flag.ContinueOnError)
	fs.SetOutput(stderr)

	var spec loadgen.Spec
	fs.StringVar(&spec.Addr, "addr", "", "remote broker address (empty: in-process broker)")
	fs.DurationVar(&spec.Duration, "duration", 5*time.Second, "length of the measured publish window")
	fs.Float64Var(&spec.Rate, "rate", 0, "aggregate arrival rate in records/sec (0: as fast as possible)")
	fs.IntVar(&spec.Publishers, "pubs", 1, "concurrent publisher connections")
	fs.IntVar(&spec.Subscribers, "subs", 1, "plain full-record subscribers")
	fs.IntVar(&spec.Scoped, "scoped", 0, "field-scoped subscribers (broker-side projection)")
	fs.IntVar(&spec.Converting, "converting", 0, "converting subscribers (foreign-architecture layout)")
	fs.IntVar(&spec.Payload, "payload", 8, "payload size in 8-byte elements per record")
	fs.IntVar(&spec.QueueDepth, "queue-depth", 1024, "per-subscriber broker queue depth (in-process broker)")
	fs.IntVar(&spec.SampleEvery, "sample", 32, "trace 1-in-N records for the stage breakdown (<0: off)")
	fs.StringVar(&spec.Chaos, "chaos", "", fmt.Sprintf("faultnet chaos profile: %s", strings.Join(loadgen.ChaosProfiles(), ", ")))
	fs.Int64Var(&spec.ChaosSeed, "chaos-seed", 1, "seed for deterministic chaos fault schedules")
	fs.StringVar(&spec.Stream, "stream", "load", "stream name to publish on")
	format := fs.String("format", "table", "report format: table, markdown, json")
	out := fs.String("out", "", "also write the JSON report to this file")

	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: omload [flags]\n\nOpen-loop load harness: publishes at -rate for -duration and reports\nE2E latency percentiles, throughput and a traced stage breakdown.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "omload: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	// SIGINT/SIGTERM end the run early; the report covers what ran.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, spec)
	if err != nil {
		fmt.Fprintf(stderr, "omload: %v\n", err)
		return 1
	}

	text, err := rep.Render(*format)
	if err != nil {
		fmt.Fprintf(stderr, "omload: %v\n", err)
		return 2
	}
	fmt.Fprint(stdout, text)

	if *out != "" {
		data, err := rep.JSON()
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "omload: write %s: %v\n", *out, err)
			return 1
		}
	}
	return 0
}
