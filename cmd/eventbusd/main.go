// Command eventbusd runs the event backbone broker of the paper's
// application scenario (Figure 1): publishers announce structured
// information streams and push NDR records; subscribers receive the records
// together with the format metadata needed to decode them, exchanged once
// per connection.
//
// Usage:
//
//	eventbusd -addr :8701
//	eventbusd -addr :8701 -debug-addr 127.0.0.1:8781 -queue-depth 512
//
// With -debug-addr the broker serves live counters (/stats, /debug/vars),
// the protocol flight recorder (/debug/flight), health endpoints (/healthz,
// /readyz) and pprof profiles (/debug/pprof/) on a second listener:
//
//	curl http://127.0.0.1:8781/stats
//	curl http://127.0.0.1:8781/debug/flight?n=50
//	curl http://127.0.0.1:8781/readyz
//
// Diagnostics go to stderr via log/slog; -log-format selects text or json.
// The broker exits cleanly on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"log/slog"

	"openmeta/internal/dcg"
	"openmeta/internal/eventbus"
	"openmeta/internal/obsv"
	"openmeta/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eventbusd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eventbusd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8701", "listen address")
	debugAddr := fs.String("debug-addr", "", "serve /stats, /debug/vars, /debug/flight, /healthz, /readyz and /debug/pprof on this address")
	queueDepth := fs.Int("queue-depth", 0, "per-subscriber outbound queue depth (0 = default)")
	writeDeadline := fs.Duration("write-deadline", 0, "per-subscriber flush deadline before a stalled peer is dropped (0 = default 2s)")
	statsInterval := fs.Duration("stats-interval", 0, "log a one-line stats delta this often (0 = off)")
	traceSample := fs.Int("trace-sample", 0, "record spans for 1 in N traces (1 = all, 0 = tracing off)")
	planCacheMax := fs.Int("plan-cache-max", 0, "bound the scoped-conversion plan cache to this many entries (0 = unbounded)")
	logFormat := fs.String("log-format", "text", "diagnostic log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obsv.NewSlog(*logFormat, os.Stderr)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	trace.Default().SetSampling(*traceSample)
	var opts []eventbus.BrokerOption
	if *queueDepth > 0 {
		opts = append(opts, eventbus.WithQueueDepth(*queueDepth))
	}
	if *writeDeadline > 0 {
		opts = append(opts, eventbus.WithWriteDeadline(*writeDeadline))
	}
	if *planCacheMax > 0 {
		opts = append(opts, eventbus.WithPlanCache(dcg.NewCache(dcg.WithMaxEntries(*planCacheMax))))
	}
	broker, err := eventbus.Listen(*addr, opts...)
	if err != nil {
		return err
	}
	logger.Info("event backbone listening", "component", "eventbusd", "addr", broker.Addr().String())

	// Readiness: the broker must be accepting, and a bounded plan cache must
	// be holding its bound (a breach means eviction is broken, not just load).
	obsv.RegisterProbe("broker", broker.Healthy)
	if max := *planCacheMax; max > 0 {
		obsv.RegisterProbe("plan-cache", func() error {
			if n := broker.PlanCacheLen(); n > max {
				return fmt.Errorf("plan cache holds %d entries, bound %d", n, max)
			}
			return nil
		})
	}

	if *debugAddr != "" {
		dbg, err := obsv.ListenAndServeDebug(*debugAddr, obsv.Default(),
			obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(trace.Default())})
		if err != nil {
			return err
		}
		logger.Info("debug endpoints up", "component", "eventbusd",
			"addr", dbg.String(), "paths", "/stats /metrics /debug/flight /debug/trace /healthz /readyz /debug/pprof")
	}
	if *statsInterval > 0 {
		stop := obsv.StartStatsLogger(obsv.Default(), *statsInterval, func(format string, args ...interface{}) {
			logger.Info(fmt.Sprintf(format, args...), "component", "stats")
		})
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down", "component", "eventbusd")
	return broker.Close()
}
