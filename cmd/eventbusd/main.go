// Command eventbusd runs the event backbone broker of the paper's
// application scenario (Figure 1): publishers announce structured
// information streams and push NDR records; subscribers receive the records
// together with the format metadata needed to decode them, exchanged once
// per connection.
//
// Usage:
//
//	eventbusd -addr :8701
//	eventbusd -addr :8701 -debug-addr 127.0.0.1:8781 -queue-depth 512
//
// With -debug-addr the broker serves live counters (/stats, /debug/vars),
// the protocol flight recorder (/debug/flight), health endpoints (/healthz,
// /readyz) and pprof profiles (/debug/pprof/) on a second listener; GET
// /debug lists every endpoint:
//
//	curl http://127.0.0.1:8781/stats
//	curl http://127.0.0.1:8781/debug/flight?n=50
//	curl http://127.0.0.1:8781/readyz
//
// With -history-interval the broker also monitors itself: metrics are
// sampled into a fixed-memory ring (/debug/history), alert rules are
// evaluated against it (/debug/alerts; defaults watch the outbound queue
// backlog and plan-cache evictions, -alert-rules overrides with a rule file
// or inline DSL), /readyz degrades while a rule fires, and rules marked
// capture record CPU/heap/goroutine profiles into /debug/profiles:
//
//	eventbusd -addr :8701 -debug-addr 127.0.0.1:8781 -history-interval 5s
//	curl 'http://127.0.0.1:8781/debug/history?key=eventbus.queue_depth'
//	curl http://127.0.0.1:8781/debug/flight?kind=alert
//	curl http://127.0.0.1:8781/debug/profiles/
//
// Runtime & contention observability is always partially on: the Go
// runtime's GC-pause/scheduler-latency/heap/goroutine telemetry is bridged
// into the registry (runtime.* metrics), and the broker's routing lock plus
// the plan-cache lock publish wait/hold histograms. /debug/contention serves
// the tracked-lock snapshots together with runtime mutex/block profile
// deltas; the profiles need a sampling rate:
//
//	eventbusd -addr :8701 -debug-addr 127.0.0.1:8781 -contention-rate 5
//	curl http://127.0.0.1:8781/debug/contention
//
// With -register <metaserver-url> the broker announces its debug listener
// to the fleet registry (/instances/ on the metaserver, heartbeat-kept), so
// cmd/omcollect discovers and scrapes it without static configuration; the
// instance name defaults to eventbusd-<host>-<pid>, -instance overrides:
//
//	eventbusd -addr :8701 -debug-addr 127.0.0.1:8781 -trace-sample 1 \
//	    -register http://127.0.0.1:8700 -instance broker
//
// Diagnostics go to stderr via log/slog; -log-format selects text or json.
// The broker exits cleanly on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"log/slog"

	"openmeta/internal/alert"
	"openmeta/internal/dcg"
	"openmeta/internal/discovery"
	"openmeta/internal/eventbus"
	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/obsv"
	"openmeta/internal/profcap"
	"openmeta/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eventbusd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eventbusd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8701", "listen address")
	debugAddr := fs.String("debug-addr", "", "serve /stats, /debug/vars, /debug/flight, /healthz, /readyz and /debug/pprof on this address")
	queueDepth := fs.Int("queue-depth", 0, "per-subscriber outbound queue depth (0 = default)")
	writeDeadline := fs.Duration("write-deadline", 0, "per-subscriber flush deadline before a stalled peer is dropped (0 = default 2s)")
	statsInterval := fs.Duration("stats-interval", 0, "log a one-line stats delta this often (0 = off)")
	traceSample := fs.Int("trace-sample", 0, "record spans for 1 in N traces (1 = all, 0 = tracing off)")
	exemplarsOn := fs.Bool("exemplars", true, "attach trace exemplars to latency histogram buckets (/stats?exemplars=1, OpenMetrics /metrics)")
	planCacheMax := fs.Int("plan-cache-max", 0, "bound the scoped-conversion plan cache to this many entries (0 = unbounded)")
	historyInterval := fs.Duration("history-interval", 0, "sample metrics into the /debug/history ring this often (0 = self-monitoring off)")
	alertRules := fs.String("alert-rules", "", "alert rules: a rule file path or inline DSL (default: built-in queue-depth and plan-cache rules; needs -history-interval)")
	profileDir := fs.String("profile-capture-dir", "", "also spill anomaly profile captures to this directory (captures are in-memory otherwise)")
	contentionRate := fs.Int("contention-rate", 0, "runtime mutex/block profiling rate feeding /debug/contention (N samples ~1-in-N contention events; 0 = profiles off, tracked locks stay on)")
	register := fs.String("register", "", "metaserver base URL to self-register the debug endpoint with (fleet discovery for omcollect; needs -debug-addr)")
	instanceName := fs.String("instance", "", "fleet instance name for -register (default eventbusd-<host>-<pid>)")
	logFormat := fs.String("log-format", "text", "diagnostic log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obsv.NewSlog(*logFormat, os.Stderr)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	trace.Default().SetSampling(*traceSample)
	obsv.SetExemplars(*exemplarsOn)
	obsv.SetContentionProfiling(*contentionRate)
	// Runtime telemetry (GC pauses, scheduler latency, heap, goroutines)
	// rides the same registry as the broker's own metrics, so histdb,
	// alerts and omcollect see it with no extra wiring.
	stopRuntime := obsv.StartRuntimeMetrics(obsv.Default(), time.Second)
	defer stopRuntime()
	var opts []eventbus.BrokerOption
	if *queueDepth > 0 {
		opts = append(opts, eventbus.WithQueueDepth(*queueDepth))
	}
	if *writeDeadline > 0 {
		opts = append(opts, eventbus.WithWriteDeadline(*writeDeadline))
	}
	if *planCacheMax > 0 {
		opts = append(opts, eventbus.WithPlanCache(dcg.NewCache(dcg.WithMaxEntries(*planCacheMax))))
	}
	broker, err := eventbus.Listen(*addr, opts...)
	if err != nil {
		return err
	}
	logger.Info("event backbone listening", "component", "eventbusd", "addr", broker.Addr().String())

	// Readiness: the broker must be accepting, and a bounded plan cache must
	// be holding its bound (a breach means eviction is broken, not just load).
	obsv.RegisterProbe("broker", broker.Healthy)
	if max := *planCacheMax; max > 0 {
		obsv.RegisterProbe("plan-cache", func() error {
			if n := broker.PlanCacheLen(); n > max {
				return fmt.Errorf("plan cache holds %d entries, bound %d", n, max)
			}
			return nil
		})
	}

	// Self-monitoring: with -history-interval the broker samples its own
	// registry into a fixed-memory ring, evaluates alert rules against it
	// (degrading /readyz and writing flight events while one fires), and arms
	// anomaly-triggered profile capture for rules that ask for it.
	var histDB *histdb.DB
	var engine *alert.Engine
	var capt *profcap.Capturer
	if *historyInterval > 0 {
		histDB = histdb.New(obsv.Default(), histdb.WithInterval(*historyInterval)).Start()
		defer histDB.Stop()
		var copts []profcap.Option
		if *profileDir != "" {
			copts = append(copts, profcap.WithDir(*profileDir))
		}
		capt = profcap.New(append(copts, profcap.WithObserver(obsv.Default()))...)
		rules := defaultAlertRules(*queueDepth)
		if *alertRules != "" {
			if rules, err = alert.LoadRules(*alertRules); err != nil {
				return err
			}
		}
		engine = alert.New(histDB,
			alert.WithObserver(obsv.Default()),
			alert.WithFlightRecorder(flight.Default()),
			alert.WithHealth(obsv.DefaultHealth()),
			alert.WithCapturer(capt),
		).Bind()
		if err := engine.Add(rules...); err != nil {
			return err
		}
		for _, r := range rules {
			logger.Info("alert rule armed", "component", "eventbusd",
				"rule", r.Name, "condition", r.Condition(), "severity", r.Severity.String(), "capture", r.Capture)
		}
	}

	if *debugAddr != "" {
		dbg, err := obsv.ListenAndServeDebug(*debugAddr, obsv.Default(),
			obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(trace.Default()),
				Desc: "recent trace spans, oldest first (?since= unix-ns scrape cursor, ?format=chrome)"},
			obsv.DebugEndpoint{Path: "/debug/history", Handler: histdb.Handler(histDB),
				Desc: "metrics time-series ring (?key=&since=)"},
			obsv.DebugEndpoint{Path: "/debug/alerts", Handler: alert.StatusHandler(engine),
				Desc: "SLO alert rules and firing state"},
			obsv.DebugEndpoint{Path: "/debug/profiles/", Handler: http.StripPrefix("/debug/profiles", profcap.Handler(capt)),
				Desc: "anomaly-triggered pprof captures"})
		if err != nil {
			return err
		}
		logger.Info("debug endpoints up", "component", "eventbusd",
			"addr", dbg.String(), "paths", "/debug /stats /metrics /debug/flight /debug/trace /debug/history /debug/alerts /debug/profiles /debug/contention /healthz /readyz /debug/pprof")
		// Fleet self-registration: announce the debug endpoint to the
		// metaserver so omcollect discovers this broker without static
		// -targets, heartbeating until shutdown.
		if *register != "" {
			name := *instanceName
			if name == "" {
				name = discovery.DefaultInstanceName("eventbusd")
			}
			stopAnnounce, err := discovery.AnnounceInstance(*register, discovery.Instance{
				Name: name, Component: "eventbusd", DebugAddr: dbg.String(),
			}, 0)
			if err != nil {
				return fmt.Errorf("self-register with %s: %w", *register, err)
			}
			defer stopAnnounce()
			logger.Info("registered with fleet", "component", "eventbusd",
				"registry", *register, "instance", name)
		}
	} else if *register != "" {
		return fmt.Errorf("-register needs -debug-addr (nothing to scrape otherwise)")
	}
	if *statsInterval > 0 {
		stop := obsv.StartStatsLogger(obsv.Default(), *statsInterval, func(format string, args ...interface{}) {
			logger.Info(fmt.Sprintf(format, args...), "component", "stats")
		})
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("shutting down", "component", "eventbusd")
	return broker.Close()
}

// defaultAlertRules are the rules armed when -history-interval is on and
// -alert-rules doesn't override them: the broker's outbound backlog sitting
// above 3/4 of its queue bound (slow subscribers about to cause drops —
// worth a profile), any plan-cache eviction pressure, GC pauses long enough
// to blow the routing latency budget, and sustained waits on the broker's
// routing lock (the contention signal ROADMAP's sharding work keys off).
// The latter two capture profiles, so the excursion arrives with evidence.
func defaultAlertRules(queueDepth int) []alert.Rule {
	if queueDepth <= 0 {
		queueDepth = 256 // the broker's default per-subscriber queue bound
	}
	return []alert.Rule{
		{
			Name:      "queue-depth",
			Metric:    "eventbus.queue_depth",
			Op:        alert.OpGT,
			Threshold: int64(3 * queueDepth / 4),
			For:       30 * time.Second,
			Severity:  alert.SevWarn,
			Capture:   true,
		},
		{
			Name:      "plan-cache-pressure",
			Metric:    "dcg.plan_cache.evictions",
			Op:        alert.OpGT,
			Threshold: 0,
			For:       60 * time.Second,
			Severity:  alert.SevWarn,
		},
		{
			Name:      "gc-pause",
			Metric:    "runtime.gc.pause_ns.p99",
			Op:        alert.OpGT,
			Threshold: (50 * time.Millisecond).Nanoseconds(),
			For:       30 * time.Second,
			Severity:  alert.SevWarn,
			Capture:   true,
		},
		{
			Name:      "broker-lock-wait",
			Metric:    "eventbus.broker_mu.wait_ns.p99",
			Op:        alert.OpGT,
			Threshold: (20 * time.Millisecond).Nanoseconds(),
			For:       30 * time.Second,
			Severity:  alert.SevWarn,
			Capture:   true,
		},
	}
}
