// Command eventbusd runs the event backbone broker of the paper's
// application scenario (Figure 1): publishers announce structured
// information streams and push NDR records; subscribers receive the records
// together with the format metadata needed to decode them, exchanged once
// per connection.
//
// Usage:
//
//	eventbusd -addr :8701
//
// The broker exits cleanly on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"openmeta/internal/eventbus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eventbusd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eventbusd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8701", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	broker, err := eventbus.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("eventbusd: event backbone listening on %s\n", broker.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("eventbusd: shutting down")
	return broker.Close()
}
