// Command eventbusd runs the event backbone broker of the paper's
// application scenario (Figure 1): publishers announce structured
// information streams and push NDR records; subscribers receive the records
// together with the format metadata needed to decode them, exchanged once
// per connection.
//
// Usage:
//
//	eventbusd -addr :8701
//	eventbusd -addr :8701 -debug-addr 127.0.0.1:8781 -queue-depth 512
//
// With -debug-addr the broker serves live counters (/stats, /debug/vars)
// and pprof profiles (/debug/pprof/) on a second listener:
//
//	curl http://127.0.0.1:8781/stats
//
// The broker exits cleanly on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"openmeta/internal/eventbus"
	"openmeta/internal/obsv"
	"openmeta/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eventbusd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eventbusd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8701", "listen address")
	debugAddr := fs.String("debug-addr", "", "serve /stats, /debug/vars and /debug/pprof on this address")
	queueDepth := fs.Int("queue-depth", 0, "per-subscriber outbound queue depth (0 = default)")
	writeDeadline := fs.Duration("write-deadline", 0, "per-subscriber flush deadline before a stalled peer is dropped (0 = default 2s)")
	statsInterval := fs.Duration("stats-interval", 0, "log a one-line stats delta this often (0 = off)")
	traceSample := fs.Int("trace-sample", 0, "record spans for 1 in N traces (1 = all, 0 = tracing off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	trace.Default().SetSampling(*traceSample)
	var opts []eventbus.BrokerOption
	if *queueDepth > 0 {
		opts = append(opts, eventbus.WithQueueDepth(*queueDepth))
	}
	if *writeDeadline > 0 {
		opts = append(opts, eventbus.WithWriteDeadline(*writeDeadline))
	}
	broker, err := eventbus.Listen(*addr, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("eventbusd: event backbone listening on %s\n", broker.Addr())
	if *debugAddr != "" {
		dbg, err := obsv.ListenAndServeDebug(*debugAddr, obsv.Default(),
			obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(trace.Default())})
		if err != nil {
			return err
		}
		fmt.Printf("eventbusd: stats, metrics, traces and pprof at http://%s/stats\n", dbg)
	}
	if *statsInterval > 0 {
		stop := obsv.StartStatsLogger(obsv.Default(), *statsInterval, log.Printf)
		defer stop()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("eventbusd: shutting down")
	return broker.Close()
}
