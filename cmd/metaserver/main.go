// Command metaserver runs a metadata repository: the "publicly known
// intranet server" of the paper's §4.4, serving XML Schema message
// descriptions over HTTP so applications can discover formats at run time.
//
// Usage:
//
//	metaserver -addr :8700 -dir ./schemas          # serve *.xsd from a directory
//	metaserver -addr :8700 -builtin                # serve the airline scenario schemas
//
// Documents are validated on load; GET /schemas/ lists names, GET
// /schemas/<name> returns a document with an ETag for revalidation. With
// -debug-addr a second listener serves /stats, /metrics, /debug/flight,
// /healthz, /readyz and pprof (GET /debug lists everything); adding
// -history-interval enables self-monitoring — /debug/history sampling,
// -alert-rules evaluation and /debug/profiles capture — mirroring eventbusd.
//
// The repository doubles as the fleet rendezvous: daemons started with
// -register announce their debug endpoints under /instances/ (heartbeat
// TTL via -instance-ttl), where cmd/omcollect discovers them — discovery
// of processes rides the same server as discovery of formats.
// Diagnostics go to stderr via log/slog; -log-format selects text or json.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"log/slog"

	"openmeta/internal/airline"
	"openmeta/internal/alert"
	"openmeta/internal/discovery"
	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/obsv"
	"openmeta/internal/profcap"
	"openmeta/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "metaserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("metaserver", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8700", "listen address")
	dir := fs.String("dir", "", "directory of <name>.xsd schema documents to serve")
	builtin := fs.Bool("builtin", false, "serve the built-in airline scenario schemas")
	writable := fs.Bool("writable", false, "accept PUT/DELETE so streams can publish their own metadata")
	instanceTTL := fs.Duration("instance-ttl", discovery.DefaultInstanceTTL, "fleet registrations under /instances/ expire after this long without a heartbeat")
	instanceName := fs.String("instance", "", "fleet instance name to self-register under (default metaserver-<host>-<pid>; needs -debug-addr)")
	debugAddr := fs.String("debug-addr", "", "serve /stats, /debug/vars, /healthz, /readyz and /debug/pprof on this address")
	historyInterval := fs.Duration("history-interval", 0, "sample metrics into the /debug/history ring this often (0 = self-monitoring off)")
	alertRules := fs.String("alert-rules", "", "alert rules: a rule file path or inline DSL (needs -history-interval)")
	profileDir := fs.String("profile-capture-dir", "", "also spill anomaly profile captures to this directory")
	statsInterval := fs.Duration("stats-interval", 0, "log a one-line stats delta this often (0 = off)")
	exemplarsOn := fs.Bool("exemplars", true, "attach trace exemplars to latency histogram buckets (/stats?exemplars=1, OpenMetrics /metrics)")
	contentionRate := fs.Int("contention-rate", 0, "runtime mutex/block profiling rate feeding /debug/contention (0 = profiles off, tracked locks stay on)")
	logFormat := fs.String("log-format", "text", "diagnostic log format: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := obsv.NewSlog(*logFormat, os.Stderr)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	obsv.SetExemplars(*exemplarsOn)
	obsv.SetContentionProfiling(*contentionRate)
	stopRuntime := obsv.StartRuntimeMetrics(obsv.Default(), time.Second)
	defer stopRuntime()

	repo := discovery.NewRepository()
	repo.SetWritable(*writable)
	loaded := 0
	if *builtin {
		for name, doc := range airline.Schemas() {
			if err := repo.Put(name, doc); err != nil {
				return fmt.Errorf("builtin schema %s: %w", name, err)
			}
			loaded++
		}
	}
	if *dir != "" {
		entries, err := os.ReadDir(*dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".xsd") {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(*dir, e.Name()))
			if err != nil {
				return err
			}
			name := strings.TrimSuffix(e.Name(), ".xsd")
			if err := repo.Put(name, string(raw)); err != nil {
				return fmt.Errorf("schema %s: %w", name, err)
			}
			loaded++
		}
	}
	if loaded == 0 && !*writable {
		return fmt.Errorf("no schemas loaded; pass -dir and/or -builtin (or -writable for an empty, publishable repository)")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("serving schemas", "component", "metaserver",
		"count", loaded, "url", "http://"+ln.Addr().String()+discovery.SchemaPathPrefix)

	// Fleet rendezvous: daemons started with -register self-announce their
	// debug endpoints under /instances/ and omcollect discovers them there.
	instances := discovery.NewInstanceRegistry(*instanceTTL)
	logger.Info("fleet registry up", "component", "metaserver",
		"url", "http://"+ln.Addr().String()+discovery.InstancePathPrefix, "ttl", *instanceTTL)

	// Readiness: a read-only repository that has lost all its documents
	// cannot answer discovery, so it must stop advertising ready.
	canWrite := *writable
	obsv.RegisterProbe("repository", func() error {
		if len(repo.Names()) == 0 && !canWrite {
			return errors.New("repository empty and read-only")
		}
		return nil
	})

	// Self-monitoring: optional metrics history, alert rules and profile
	// capture, mirroring eventbusd (no default rules here — the repository
	// has no queue to watch; pass -alert-rules to arm some).
	var histDB *histdb.DB
	var engine *alert.Engine
	var capt *profcap.Capturer
	if *historyInterval > 0 {
		histDB = histdb.New(obsv.Default(), histdb.WithInterval(*historyInterval)).Start()
		defer histDB.Stop()
		var copts []profcap.Option
		if *profileDir != "" {
			copts = append(copts, profcap.WithDir(*profileDir))
		}
		capt = profcap.New(append(copts, profcap.WithObserver(obsv.Default()))...)
		if *alertRules != "" {
			rules, err := alert.LoadRules(*alertRules)
			if err != nil {
				return err
			}
			engine = alert.New(histDB,
				alert.WithObserver(obsv.Default()),
				alert.WithFlightRecorder(flight.Default()),
				alert.WithHealth(obsv.DefaultHealth()),
				alert.WithCapturer(capt),
			).Bind()
			if err := engine.Add(rules...); err != nil {
				return err
			}
			for _, r := range rules {
				logger.Info("alert rule armed", "component", "metaserver",
					"rule", r.Name, "condition", r.Condition(), "severity", r.Severity.String(), "capture", r.Capture)
			}
		}
	}

	if *debugAddr != "" {
		dbg, err := obsv.ListenAndServeDebug(*debugAddr, obsv.Default(),
			obsv.DebugEndpoint{Path: "/debug/history", Handler: histdb.Handler(histDB),
				Desc: "metrics time-series ring (?key=&since=)"},
			obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(trace.Default()),
				Desc: "recent trace spans, oldest first (?since= unix-ns scrape cursor, ?format=chrome)"},
			obsv.DebugEndpoint{Path: "/debug/alerts", Handler: alert.StatusHandler(engine),
				Desc: "SLO alert rules and firing state"},
			obsv.DebugEndpoint{Path: "/debug/profiles/", Handler: http.StripPrefix("/debug/profiles", profcap.Handler(capt)),
				Desc: "anomaly-triggered pprof captures"})
		if err != nil {
			return err
		}
		logger.Info("debug endpoints up", "component", "metaserver",
			"addr", dbg.String(), "paths", "/debug /stats /metrics /debug/trace /debug/history /debug/alerts /debug/profiles /healthz /readyz /debug/pprof")
		// The metaserver is itself a fleet member: register its own debug
		// endpoint in the registry it hosts so omcollect -registry scrapes it
		// alongside the daemons.
		name := *instanceName
		if name == "" {
			name = discovery.DefaultInstanceName("metaserver")
		}
		if err := instances.Register(discovery.Instance{
			Name: name, Component: "metaserver", DebugAddr: dbg.String(),
		}); err != nil {
			return err
		}
		// Keep the self-registration alive past the TTL.
		go func() {
			for range time.Tick(*instanceTTL / 3) {
				_ = instances.Register(discovery.Instance{
					Name: name, Component: "metaserver", DebugAddr: dbg.String(),
				})
			}
		}()
	}
	if *statsInterval > 0 {
		stop := obsv.StartStatsLogger(obsv.Default(), *statsInterval, func(format string, args ...interface{}) {
			logger.Info(fmt.Sprintf(format, args...), "component", "stats")
		})
		defer stop()
	}
	for _, n := range repo.Names() {
		logger.Info("schema loaded", "component", "metaserver", "name", n)
	}
	mux := http.NewServeMux()
	mux.Handle(discovery.SchemaPathPrefix, repo.Handler())
	mux.Handle(discovery.InstancePathPrefix, instances.Handler())
	srv := &http.Server{Handler: mux}
	return srv.Serve(ln)
}
