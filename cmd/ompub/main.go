// Command ompub publishes records onto an event backbone stream. It is the
// text-to-binary gateway of the open-metadata design: records arrive as XML
// text messages (on stdin, one document per line) or as built-in synthetic
// airline events, are bound to a format discovered from an XML Schema, and
// leave as efficient binary NDR.
//
// Usage:
//
//	ompub -broker 127.0.0.1:8701 -stream test -schema flight.xsd -type ASDOffEvent < records.xml
//	ompub -broker 127.0.0.1:8701 -demo flights -n 100
//	ompub -broker 127.0.0.1:8701 -demo flights -reconnect
//
// With -reconnect the publisher survives broker restarts: it redials with
// backoff, re-announces its streams and re-sends format metadata before
// continuing. Demo publishing is paced with -pace (delay between events),
// useful for feeding a live fleet at a steady rate.
//
// With -debug-addr the publisher serves its own /stats, /debug/trace and
// /debug/flight, and -register <metaserver-url> announces that listener to
// the fleet registry so cmd/omcollect scrapes it (name via -instance,
// default ompub-<host>-<pid>).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"openmeta/internal/airline"
	"openmeta/internal/core"
	"openmeta/internal/discovery"
	"openmeta/internal/eventbus"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/retry"
	"openmeta/internal/trace"
	"openmeta/internal/xmlwire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ompub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ompub", flag.ContinueOnError)
	broker := fs.String("broker", "127.0.0.1:8701", "broker address")
	stream := fs.String("stream", "", "stream to publish on")
	schemaFile := fs.String("schema", "", "XML Schema document describing the records")
	typeName := fs.String("type", "", "complexType name within the schema (default: last)")
	demo := fs.String("demo", "", "publish synthetic events: flights | weather | mining")
	n := fs.Int("n", 10, "number of demo events")
	pace := fs.Duration("pace", 0, "delay between demo events (0 = publish as fast as possible)")
	seed := fs.Int64("seed", 1, "demo generator seed")
	debugAddr := fs.String("debug-addr", "", "serve /stats, /debug/vars and /debug/pprof on this address")
	register := fs.String("register", "", "metaserver base URL to self-register the debug endpoint with (fleet discovery for omcollect; needs -debug-addr)")
	instanceName := fs.String("instance", "", "fleet instance name for -register (default ompub-<host>-<pid>)")
	reconnect := fs.Bool("reconnect", false, "redial the broker with backoff when the connection breaks")
	dialTimeout := fs.Duration("dial-timeout", 0, "per-attempt broker dial timeout (0 = default 10s)")
	traceSample := fs.Int("trace-sample", 0, "record spans for 1 in N published records (1 = all, 0 = tracing off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	trace.Default().SetSampling(*traceSample)
	stopRuntime := obsv.StartRuntimeMetrics(obsv.Default(), time.Second)
	defer stopRuntime()
	if *debugAddr != "" {
		dbg, err := obsv.ListenAndServeDebug(*debugAddr, obsv.Default(),
			obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(trace.Default()),
				Desc: "recent trace spans, oldest first (?since= unix-ns scrape cursor, ?format=chrome)"})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ompub: stats and pprof at http://%s/stats\n", dbg)
		if *register != "" {
			name := *instanceName
			if name == "" {
				name = discovery.DefaultInstanceName("ompub")
			}
			stopAnnounce, err := discovery.AnnounceInstance(*register, discovery.Instance{
				Name: name, Component: "ompub", DebugAddr: dbg.String(),
			}, 0)
			if err != nil {
				return fmt.Errorf("self-register with %s: %w", *register, err)
			}
			defer stopAnnounce()
		}
	} else if *register != "" {
		return errors.New("-register needs -debug-addr (nothing to scrape otherwise)")
	}

	pctx, err := pbio.NewContext(machine.Native)
	if err != nil {
		return err
	}
	var copts []eventbus.ClientOption
	if *reconnect {
		copts = append(copts, eventbus.WithReconnect(retry.Policy{}))
	}
	if *dialTimeout > 0 {
		copts = append(copts, eventbus.WithDialTimeout(*dialTimeout))
	}
	pub, err := eventbus.DialPublisher(*broker, copts...)
	if err != nil {
		return err
	}
	defer pub.Close()

	if *demo != "" {
		return runDemo(pctx, pub, *demo, *stream, *n, *seed, *pace)
	}
	if *stream == "" || *schemaFile == "" {
		return errors.New("-stream and -schema are required (or -demo)")
	}
	set, err := core.RegisterFile(pctx, *schemaFile)
	if err != nil {
		return err
	}
	format := set.Root()
	if *typeName != "" {
		var ok bool
		if format, ok = set.Lookup(*typeName); !ok {
			return fmt.Errorf("schema does not define %q", *typeName)
		}
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := xmlwire.DecodeRecord(format, line)
		if err != nil {
			return fmt.Errorf("input record %d: %w", count+1, err)
		}
		if err := pub.PublishRecord(*stream, format, rec); err != nil {
			return err
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ompub: published %d records on %s as %q\n", count, *stream, format.Name)
	return nil
}

func runDemo(pctx *pbio.Context, pub *eventbus.Publisher, demo, stream string, n int, seed int64, pace time.Duration) error {
	var (
		doc      string
		typeName string
		next     func() pbio.Record
	)
	switch demo {
	case "flights":
		doc, typeName = airline.FlightSchema, "ASDOffEvent"
		if stream == "" {
			stream = airline.FlightStream
		}
		g := airline.NewFlightGen(seed)
		next = g.Next
	case "weather":
		doc, typeName = airline.WeatherSchema, "WeatherObs"
		if stream == "" {
			stream = airline.WeatherStream
		}
		g := airline.NewWeatherGen(seed)
		next = g.Next
	case "mining":
		doc, typeName = airline.MiningSchema, "LoadTrend"
		if stream == "" {
			stream = airline.MiningStream
		}
		g := airline.NewMiningGen(seed)
		next = g.Next
	default:
		return fmt.Errorf("unknown demo %q (flights | weather | mining)", demo)
	}
	set, err := core.RegisterDocument(pctx, []byte(doc))
	if err != nil {
		return err
	}
	format, ok := set.Lookup(typeName)
	if !ok {
		return fmt.Errorf("demo schema missing %q", typeName)
	}
	for i := 0; i < n; i++ {
		if err := pub.PublishRecord(stream, format, next()); err != nil {
			return err
		}
		if pace > 0 && i < n-1 {
			time.Sleep(pace)
		}
	}
	fmt.Fprintf(os.Stderr, "ompub: published %d %s events on %s\n", n, demo, stream)
	return nil
}
