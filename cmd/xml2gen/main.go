// Command xml2gen generates Go message types from XML Schema metadata —
// the language-level object representation generation the paper plans in
// §7 (there for C++ and Java). The generated file contains a struct per
// complexType (bindable to the registered format), the schema document
// itself, and a registration helper; the wire format remains driven by the
// open XML metadata at run time.
//
// Usage:
//
//	xml2gen -file schema.xsd -package msgs [-out msgs_gen.go]
package main

import (
	"flag"
	"fmt"
	"os"

	"openmeta/internal/gen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xml2gen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xml2gen", flag.ContinueOnError)
	file := fs.String("file", "", "schema document to generate from")
	pkg := fs.String("package", "", "package name for the generated file")
	out := fs.String("out", "", "output file (default stdout)")
	schemaConst := fs.String("const", "SchemaDocument", "name of the schema document constant")
	registerFn := fs.String("register", "RegisterSchema", "name of the registration helper")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" || *pkg == "" {
		return fmt.Errorf("-file and -package are required")
	}
	doc, err := os.ReadFile(*file)
	if err != nil {
		return err
	}
	src, err := gen.GoSource(string(doc), gen.Options{
		Package:      *pkg,
		SchemaConst:  *schemaConst,
		RegisterFunc: *registerFn,
	})
	if err != nil {
		return err
	}
	if *out == "" {
		fmt.Print(src)
		return nil
	}
	return os.WriteFile(*out, []byte(src), 0o644)
}
