package openmeta

import (
	"net/http"
	"time"

	"openmeta/internal/discovery"
	"openmeta/internal/obsv"
	"openmeta/internal/telemetry"
	"openmeta/internal/trace"
)

// Fleet telemetry: the observability stack scaled from one process to a
// deployment. Daemons announce their debug endpoints to the metaserver's
// instance registry (the same rendezvous that serves format metadata), a
// FleetCollector scrapes every member incrementally, and the merged view —
// instance-labeled stats, an interleaved flight stream, cross-process trace
// assembly with clock-skew estimation — is served under /fleet/* (see
// cmd/omcollect).

// FleetCollector discovers fleet members, scrapes their /stats,
// /debug/trace, /debug/flight and /debug/history endpoints on an interval
// with incremental cursors, and holds the merged state behind FleetHandler.
type FleetCollector = telemetry.Collector

// FleetTarget names one static scrape endpoint (a process's -debug-addr).
type FleetTarget = telemetry.Target

// FleetMember is one scrape target with its health: stale flag, consecutive
// failures, last error, and the observed clock offset versus the collector.
type FleetMember = telemetry.Member

// FleetOption configures NewFleetCollector.
type FleetOption = telemetry.Option

// NewFleetCollector builds a collector over static targets and/or a
// metaserver registry. Call Start for interval scraping or ScrapeOnce to
// drive rounds manually.
func NewFleetCollector(opts ...FleetOption) *FleetCollector { return telemetry.New(opts...) }

// WithFleetTargets adds static scrape targets.
func WithFleetTargets(ts ...FleetTarget) FleetOption { return telemetry.WithTargets(ts...) }

// WithFleetRegistry points the collector at a metaserver base URL whose
// /instances/ listing is re-read every scrape round.
func WithFleetRegistry(baseURL string) FleetOption { return telemetry.WithRegistry(baseURL) }

// WithFleetInterval sets the scrape cadence (default 2s).
func WithFleetInterval(d time.Duration) FleetOption { return telemetry.WithInterval(d) }

// WithFleetObserver registers the collector's own telemetry.* metrics on an
// observer registry.
func WithFleetObserver(reg *obsv.Registry) FleetOption { return telemetry.WithObserver(reg) }

// FleetHandler serves a collector's merged view — /fleet/members,
// /fleet/stats, /fleet/flight, /fleet/history, /fleet/trace and
// /fleet/trace/<id>. Mount it at /fleet/.
func FleetHandler(c *FleetCollector) http.Handler { return telemetry.Handler(c) }

// TaggedSpan is a completed span attributed to the fleet instance whose
// trace ring it was scraped from.
type TaggedSpan = trace.TaggedSpan

// TraceAssembly is one TraceID's spans from every scraped process stitched
// into parent-linked trees, with orphan promotion and per-instance
// clock-skew estimates.
type TraceAssembly = trace.Assembly

// AssembleTrace stitches the spans of one trace (scraped from any number of
// processes, duplicates welcome) into a TraceAssembly.
func AssembleTrace(id TraceID, spans []TaggedSpan) *TraceAssembly {
	return trace.Assemble(id, spans)
}

// FleetInstance is one self-registered fleet member in the metaserver's
// instance registry.
type FleetInstance = discovery.Instance

// AnnounceFleetInstance registers inst with the metaserver at baseURL and
// heartbeats until the returned stop function is called (which also
// deregisters). interval <= 0 heartbeats at a third of the registry TTL.
func AnnounceFleetInstance(baseURL string, inst FleetInstance, interval time.Duration) (stop func(), err error) {
	return discovery.AnnounceInstance(baseURL, inst, interval)
}

// DefaultFleetInstanceName builds the conventional registration name for
// this process: component-hostname-pid.
func DefaultFleetInstanceName(component string) string {
	return discovery.DefaultInstanceName(component)
}
