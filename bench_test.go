package openmeta

// One testing.B benchmark per evaluation artifact. The same measurements,
// with medians and table formatting, are produced by cmd/benchtab; these
// benchmarks expose the raw per-operation numbers to `go test -bench`.
//
//	Table 1  BenchmarkTable1Registration    native PBIO vs xml2wire registration
//	Table 2  BenchmarkTable2WireFormats     NDR vs XDR vs XML-text marshal/unmarshal
//	Table 3  BenchmarkTable3Pipeline        sender+receiver cost, homo/heterogeneous
//	Table 4  BenchmarkTable4EndToEnd        loopback TCP round trips per wire format
//	Table 5  BenchmarkTable5Amortization    registration + N messages
//	Table 6  BenchmarkTable6Receive         identity vs compiled plan vs naive receive
//	Table 7  BenchmarkTable7WireBytes       format-cache ablation (bytes/msg metric)

import (
	"fmt"
	"testing"

	"openmeta/internal/bench"
	"openmeta/internal/core"
	"openmeta/internal/dcg"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xdr"
	"openmeta/internal/xmlwire"
)

func mustContext(b *testing.B, arch *machine.Arch) *pbio.Context {
	b.Helper()
	ctx, err := pbio.NewContext(arch)
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}

func mustSweep(b *testing.B, arch *machine.Arch) []bench.Workload {
	b.Helper()
	works, err := bench.SizeSweep(mustContext(b, arch), 1)
	if err != nil {
		b.Fatal(err)
	}
	return works
}

// BenchmarkTable1Registration measures format registration from native PBIO
// metadata and through xml2wire, per Appendix A structure.
func BenchmarkTable1Registration(b *testing.B) {
	for _, c := range bench.RegistrationCases() {
		c := c
		b.Run("PBIO/"+c.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx, err := pbio.NewContext(machine.Sparc)
				if err != nil {
					b.Fatal(err)
				}
				for _, nf := range c.Formats {
					if _, err := ctx.Register(nf.Name, nf.Fields); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run("xml2wire/"+c.Name, func(b *testing.B) {
			doc := []byte(c.Schema)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ctx, err := pbio.NewContext(machine.Sparc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.RegisterDocument(ctx, doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2WireFormats measures marshal and unmarshal cost per wire
// format over the size sweep.
func BenchmarkTable2WireFormats(b *testing.B) {
	works := mustSweep(b, machine.Native)
	for _, w := range works {
		w := w
		ndr, err := w.Format.Encode(w.Record)
		if err != nil {
			b.Fatal(err)
		}
		xdrData, err := xdr.EncodeRecord(w.Format, w.Record)
		if err != nil {
			b.Fatal(err)
		}
		xmlData, err := xmlwire.EncodeRecord(w.Format, w.Record)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("NDR/encode/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(ndr)))
			buf := make([]byte, 0, len(ndr))
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = w.Format.AppendEncode(buf[:0], w.Record)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("NDR/decode/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(ndr)))
			for i := 0; i < b.N; i++ {
				if _, err := w.Format.Decode(ndr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("XDR/encode/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(xdrData)))
			for i := 0; i < b.N; i++ {
				if _, err := xdr.EncodeRecord(w.Format, w.Record); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("XDR/decode/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(xdrData)))
			for i := 0; i < b.N; i++ {
				if _, err := xdr.DecodeRecord(w.Format, xdrData); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("XMLtext/encode/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(xmlData)))
			for i := 0; i < b.N; i++ {
				if _, err := xmlwire.EncodeRecord(w.Format, w.Record); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("XMLtext/decode/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(xmlData)))
			for i := 0; i < b.N; i++ {
				if _, err := xmlwire.DecodeRecord(w.Format, xmlData); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Pipeline measures the full sender-marshal + receiver-
// make-right pipeline: NDR between identical machines, NDR across
// architectures, and XDR (which canonicalizes on both sides regardless).
func BenchmarkTable3Pipeline(b *testing.B) {
	srcWorks := mustSweep(b, machine.Native)
	dstWorks := mustSweep(b, machine.Sparc64)
	cache := dcg.NewCache()
	for i, w := range srcWorks {
		w := w
		homo, err := cache.Plan(w.Format, w.Format)
		if err != nil {
			b.Fatal(err)
		}
		hetero, err := cache.Plan(w.Format, dstWorks[i].Format)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("NDRhomo/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]byte, 0, 1<<16)
			out := make([]byte, 0, 1<<16)
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = w.Format.AppendEncode(buf[:0], w.Record)
				if err != nil {
					b.Fatal(err)
				}
				out, err = homo.AppendConvert(out[:0], buf)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("NDRhetero/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]byte, 0, 1<<16)
			out := make([]byte, 0, 1<<16)
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = w.Format.AppendEncode(buf[:0], w.Record)
				if err != nil {
					b.Fatal(err)
				}
				out, err = hetero.AppendConvert(out[:0], buf)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("XDR/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc, err := xdr.EncodeRecord(w.Format, w.Record)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := xdr.DecodeRecord(w.Format, enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4EndToEnd measures request/ack round trips over loopback
// TCP per wire format (the paper's promised end-to-end latency comparison).
func BenchmarkTable4EndToEnd(b *testing.B) {
	cfg := bench.Quick()
	cfg.Messages = 100
	cfg.Trials = 1
	// The table generator encapsulates the socket choreography (one TCP
	// session per pipeline, request/ack per message); benchmark it wholesale.
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5Amortization measures registration + N messages for the
// two registration paths.
func BenchmarkTable5Amortization(b *testing.B) {
	c := bench.StructureBCase()
	doc := []byte(c.Schema)
	for _, n := range []int{1, 100, 10000} {
		n := n
		b.Run(fmt.Sprintf("xml2wire/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx, err := pbio.NewContext(machine.Sparc)
				if err != nil {
					b.Fatal(err)
				}
				set, err := core.RegisterDocument(ctx, doc)
				if err != nil {
					b.Fatal(err)
				}
				f := set.Root()
				var buf []byte
				for j := 0; j < n; j++ {
					buf, err = f.AppendEncode(buf[:0], c.Record)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := f.Decode(buf); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("PBIO/N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx, err := pbio.NewContext(machine.Sparc)
				if err != nil {
					b.Fatal(err)
				}
				f, err := ctx.Register(c.Formats[0].Name, c.Formats[0].Fields)
				if err != nil {
					b.Fatal(err)
				}
				var buf []byte
				for j := 0; j < n; j++ {
					buf, err = f.AppendEncode(buf[:0], c.Record)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := f.Decode(buf); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTable6Receive measures receiver-side conversion: the identity
// fast path, the compiled conversion plan, and naive per-message
// interpretation (the DCG ablation).
func BenchmarkTable6Receive(b *testing.B) {
	srcWorks := mustSweep(b, machine.Sparc64)
	dstWorks := mustSweep(b, machine.Native)
	cache := dcg.NewCache()
	for i, w := range srcWorks {
		w := w
		data, err := w.Format.Encode(w.Record)
		if err != nil {
			b.Fatal(err)
		}
		identity, err := cache.Plan(w.Format, w.Format)
		if err != nil {
			b.Fatal(err)
		}
		plan, err := cache.Plan(w.Format, dstWorks[i].Format)
		if err != nil {
			b.Fatal(err)
		}
		dst := dstWorks[i].Format
		b.Run("identity/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			out := make([]byte, 0, len(data)+64)
			for i := 0; i < b.N; i++ {
				var err error
				out, err = identity.AppendConvert(out[:0], data)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("plan/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			out := make([]byte, 0, len(data)+64)
			for i := 0; i < b.N; i++ {
				var err error
				out, err = plan.AppendConvert(out[:0], data)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("naive/"+w.Name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := dcg.Naive(w.Format, dst, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable7WireBytes reports wire bytes per message with and without
// the once-per-connection format cache.
func BenchmarkTable7WireBytes(b *testing.B) {
	works := mustSweep(b, machine.Native)
	for _, w := range works {
		w := w
		data, err := w.Format.Encode(w.Record)
		if err != nil {
			b.Fatal(err)
		}
		for _, resend := range []bool{false, true} {
			resend := resend
			name := "cached/" + w.Name
			if resend {
				name = "uncached/" + w.Name
			}
			b.Run(name, func(b *testing.B) {
				var sink discard
				pw := pbio.NewWriter(&sink)
				pw.SetResendMetadata(resend)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := pw.WriteRecord(w.Format, data); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(sink.n)/float64(b.N), "wirebytes/msg")
			})
		}
	}
}

type discard struct{ n int }

func (d *discard) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}

// BenchmarkBindingVsGeneric quantifies what struct binding buys over the
// generic record path (an implementation ablation beyond the paper).
func BenchmarkBindingVsGeneric(b *testing.B) {
	c := bench.StructureBCase()
	// The case's IOField offsets are the paper's 32-bit SPARC layout.
	ctx := mustContext(b, machine.Sparc)
	f, err := ctx.Register(c.Formats[0].Name, c.Formats[0].Fields)
	if err != nil {
		b.Fatal(err)
	}
	type asdOff struct {
		CntrID string `pbio:"cntrID"`
		Arln   string `pbio:"arln"`
		FltNum int32  `pbio:"fltNum"`
		Equip  string `pbio:"equip"`
		Org    string `pbio:"org"`
		Dest   string `pbio:"dest"`
		Off    [5]uint32
		Eta    []uint32
	}
	bind, err := f.Bind(asdOff{})
	if err != nil {
		b.Fatal(err)
	}
	v := asdOff{CntrID: "ZTL", Arln: "DL", FltNum: 1842, Equip: "B757",
		Org: "ATL", Dest: "MCO", Off: [5]uint32{1, 2, 3, 4, 5}, Eta: []uint32{10, 20, 30}}
	data, err := bind.Encode(&v)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode/bound", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, len(data))
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = bind.AppendEncode(buf[:0], &v)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/generic", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, len(data))
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = f.AppendEncode(buf[:0], c.Record)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/bound", func(b *testing.B) {
		b.ReportAllocs()
		var out asdOff
		for i := 0; i < b.N; i++ {
			if err := bind.Decode(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/generic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}
