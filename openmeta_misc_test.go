package openmeta_test

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"

	"openmeta"
	"openmeta/internal/airline"
)

func TestFacadeParseSchemaAndRegister(t *testing.T) {
	s, err := openmeta.ParseSchema(flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	ctx := mustCtx(t)
	set, err := openmeta.RegisterSchema(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if set.Root().Name != "ASDOffEvent" {
		t.Errorf("root = %q", set.Root().Name)
	}
	if _, err := openmeta.ParseSchema("<junk/>"); err == nil {
		t.Error("junk schema accepted")
	}
}

func TestFacadeServeRepositoryAndURLRegistration(t *testing.T) {
	repo := openmeta.NewRepository()
	if err := repo.Put("ASDOffEvent", flightSchema); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- openmeta.ServeRepository(ln, repo) }()

	pctx := mustCtx(t)
	set, err := openmeta.RegisterSchemaURL(context.Background(), pctx,
		"http://"+ln.Addr().String()+"/schemas/ASDOffEvent")
	if err != nil {
		t.Fatal(err)
	}
	if set.Root().Size == 0 {
		t.Error("empty format from URL registration")
	}
	if _, err := openmeta.RegisterSchemaURL(context.Background(), pctx,
		"http://"+ln.Addr().String()+"/schemas/NoSuch"); err == nil {
		t.Error("missing schema URL accepted")
	}
	ln.Close()
	<-done // Serve returns on listener close
}

func TestFacadeRegisterSchemaFileAndDirSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "WeatherObs.xsd")
	if err := os.WriteFile(path, []byte(airline.WeatherSchema), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaFile(mustCtx(t), path)
	if err != nil {
		t.Fatal(err)
	}
	if set.Root().Name != "WeatherObs" {
		t.Errorf("root = %q", set.Root().Name)
	}

	src := openmeta.DirSchemas(dir)
	set2, err := openmeta.DiscoverAndRegister(context.Background(), src, mustCtx(t), "WeatherObs")
	if err != nil {
		t.Fatal(err)
	}
	if set2.Root().ID != set.Root().ID {
		t.Error("dir source produced a different format")
	}
}

func TestFacadeNewBrokerOnListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := openmeta.NewBroker(ln)
	defer b.Close()
	pub, err := openmeta.DialPublisher(b.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if err := pub.Announce("s"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCreateAndOpenRecordFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.pbio")
	fw, err := openmeta.CreateRecordFile(path)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.RegisterSchemaDocument(mustCtx(t), flightSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteValue(set.Root(), openmeta.Record{"cntrID": "Z"}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := openmeta.OpenRecordFile(path, mustCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	_, rec, err := fr.ReadValue()
	if err != nil {
		t.Fatal(err)
	}
	if rec["cntrID"] != "Z" {
		t.Errorf("rec = %v", rec)
	}
}

func TestFacadeValidateRecord(t *testing.T) {
	const doc = `<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
	  <xsd:simpleType name="Gate">
	    <xsd:restriction base="xsd:string"><xsd:maxLength value="3"/></xsd:restriction>
	  </xsd:simpleType>
	  <xsd:complexType name="GateEvent">
	    <xsd:element name="gate" type="Gate"/>
	  </xsd:complexType>
	</xsd:schema>`
	s, err := openmeta.ParseSchema(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := openmeta.ValidateRecord(s, "GateEvent", openmeta.Record{"gate": "B23"}); err != nil {
		t.Errorf("conforming record rejected: %v", err)
	}
	if err := openmeta.ValidateRecord(s, "GateEvent", openmeta.Record{"gate": "B23-REMOTE"}); err == nil {
		t.Error("over-length gate accepted")
	}
}
