package openmeta_test

// Integration test of the whole system composed the way the paper's
// airline scenario composes it: metadata repository -> run-time discovery
// -> xml2wire registration on a simulated foreign architecture -> event
// backbone with a scoped and a full subscriber -> archival to a
// self-describing record file -> replay on the local architecture ->
// format evolution on the repository picked up by a watcher.

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmeta"
	"openmeta/internal/airline"
	"openmeta/internal/testutil"
)

func TestFullSystemIntegration(t *testing.T) {
	// --- Metadata repository ---------------------------------------------
	repo := openmeta.NewRepository()
	for name, doc := range airline.Schemas() {
		if err := repo.Put(name, doc); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(repo.Handler())
	defer srv.Close()
	client, err := openmeta.NewDiscoveryClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resolver := openmeta.NewResolver(client, openmeta.StaticSchemas(airline.Schemas()))

	// --- Event backbone ----------------------------------------------------
	broker, err := openmeta.ListenBroker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	// --- Publisher: discovers format, registers for big-endian SPARC ------
	pubCtx, err := openmeta.NewContext(openmeta.ArchSparc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := openmeta.DiscoverAndRegister(context.Background(), resolver, pubCtx, "ASDOffEvent")
	if err != nil {
		t.Fatal(err)
	}
	flightFmt := set.Root()

	// --- Consumers ---------------------------------------------------------
	fullSub, err := openmeta.DialSubscriber(broker.Addr().String(), mustCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer fullSub.Close()
	if err := fullSub.Subscribe(airline.FlightStream); err != nil {
		t.Fatal(err)
	}
	scopedSub, err := openmeta.DialSubscriber(broker.Addr().String(), mustCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	defer scopedSub.Close()
	if err := scopedSub.SubscribeFields(airline.FlightStream, "cntrID", "fltNum"); err != nil {
		t.Fatal(err)
	}

	pub, err := openmeta.DialPublisher(broker.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Publish until both subscribers have their first event (subscription
	// registration races the first publish).
	gen := airline.NewFlightGen(11)
	rec := gen.Next()
	const wantEach = 3
	fullEvents := collectAsync(fullSub, wantEach)
	scopedEvents := collectAsync(scopedSub, wantEach)
	published := 0
	testutil.Poll(10*time.Second, func() bool {
		if err := pub.PublishRecord(airline.FlightStream, flightFmt, rec); err != nil {
			t.Fatal(err)
		}
		published++
		fullEvents.drain()
		scopedEvents.drain()
		return len(fullEvents.got) >= wantEach && len(scopedEvents.got) >= wantEach
	})
	if len(fullEvents.got) < wantEach || len(scopedEvents.got) < wantEach {
		t.Fatalf("full=%d scoped=%d after %d publishes",
			len(fullEvents.got), len(scopedEvents.got), published)
	}

	// Full consumer sees the complete record, cross-architecture.
	fr, err := fullEvents.got[0].Decode()
	if err != nil {
		t.Fatal(err)
	}
	if fr["cntrID"] != rec["cntrID"] || fr["fltNum"] != rec["fltNum"].(int64) {
		t.Errorf("full record = %v", fr)
	}
	// Scoped consumer sees only its slice.
	sr, err := scopedEvents.got[0].Decode()
	if err != nil {
		t.Fatal(err)
	}
	if _, present := sr["dest"]; present {
		t.Error("scoped subscriber received hidden field")
	}
	if sr["cntrID"] != rec["cntrID"] {
		t.Errorf("scoped record = %v", sr)
	}

	// --- Archive the received events to a self-describing file ------------
	var archive strings.Builder
	fw, err := openmeta.NewRecordFileWriter(noopWriteCloser{&archive})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range fullEvents.got {
		if err := fw.WriteRecord(ev.Format, ev.Data); err != nil {
			t.Fatal(err)
		}
	}
	// --- Replay on the local architecture, no prior format knowledge ------
	rdr, err := openmeta.NewRecordFileReader(strings.NewReader(archive.String()), mustCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for {
		f, data, err := rdr.ReadRecord()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		if out["cntrID"] != rec["cntrID"] {
			t.Errorf("replayed record = %v", out)
		}
		replayed++
	}
	if replayed != wantEach {
		t.Errorf("replayed = %d", replayed)
	}

	// --- Evolution via the watcher ----------------------------------------
	w := openmeta.WatchSchemas(freshSource{client}, 20*time.Millisecond)
	defer w.Close()
	w.Add("ASDOffEvent")
	first := nextUpdate(t, w)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	evolved := strings.Replace(airline.FlightSchema,
		`<xsd:element name="eta" `,
		`<xsd:element name="squawk" type="xsd:integer" /><xsd:element name="eta" `, 1)
	if err := repo.Put("ASDOffEvent", evolved); err != nil {
		t.Fatal(err)
	}
	second := nextUpdate(t, w)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	found := false
	for _, e := range second.Schema.Types[0].Elements {
		if e.Name == "squawk" {
			found = true
		}
	}
	if !found {
		t.Error("evolved schema missing the new field")
	}
}

func mustCtx(t *testing.T) *openmeta.Context {
	t.Helper()
	ctx, err := openmeta.NewContext(openmeta.NativeArch)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

type collector struct {
	ch  chan openmeta.Event
	got []openmeta.Event
}

func collectAsync(sub *openmeta.Subscriber, n int) *collector {
	c := &collector{ch: make(chan openmeta.Event, n)}
	go func() {
		for i := 0; i < n; i++ {
			ev, err := sub.Next()
			if err != nil {
				return
			}
			c.ch <- ev
		}
	}()
	return c
}

func (c *collector) drain() {
	for {
		select {
		case ev := <-c.ch:
			c.got = append(c.got, ev)
		default:
			return
		}
	}
}

type noopWriteCloser struct{ w io.Writer }

func (n noopWriteCloser) Write(p []byte) (int, error) { return n.w.Write(p) }
func (n noopWriteCloser) Close() error                { return nil }

// freshSource forces revalidation each poll so the test reacts promptly.
type freshSource struct {
	c *openmeta.DiscoveryClient
}

func (s freshSource) Schema(ctx context.Context, name string) (*openmeta.Schema, error) {
	s.c.Invalidate(name)
	return s.c.Schema(ctx, name)
}
func (s freshSource) Describe() string { return "fresh" }

func nextUpdate(t *testing.T, w *openmeta.SchemaWatcher) openmeta.SchemaUpdate {
	t.Helper()
	select {
	case u, ok := <-w.Updates():
		if !ok {
			t.Fatal("updates closed")
		}
		return u
	case <-time.After(10 * time.Second):
		t.Fatal("no watcher update")
	}
	panic("unreachable")
}
