package openmeta

import (
	"context"
	"net"
	"net/http"

	"openmeta/internal/core"
	"openmeta/internal/dcg"
	"openmeta/internal/discovery"
	"openmeta/internal/eventbus"
	"openmeta/internal/machine"
	"openmeta/internal/pbio"
	"openmeta/internal/xdr"
	"openmeta/internal/xmlschema"
	"openmeta/internal/xmlwire"
)

// Core types, re-exported so applications depend on one import path.
type (
	// Arch describes a machine architecture (byte order, C type sizes,
	// alignment); formats are laid out for an Arch.
	Arch = machine.Arch
	// Context owns the catalog of registered formats.
	Context = pbio.Context
	// Format is a registered message format.
	Format = pbio.Format
	// FormatID is the compact wire identifier of a format.
	FormatID = pbio.FormatID
	// Record is a dynamically typed record value for discovered formats.
	Record = pbio.Record
	// Binding pairs a Format with a Go struct type.
	Binding = pbio.Binding
	// IOField is the paper-style explicit field descriptor.
	IOField = pbio.IOField
	// FieldSpec declares a field whose layout is computed per architecture.
	FieldSpec = pbio.FieldSpec
	// FormatSet is the result of registering one schema document.
	FormatSet = core.FormatSet
	// Schema is a parsed XML Schema metadata document.
	Schema = xmlschema.Schema
	// ConversionPlan converts records between two formats.
	ConversionPlan = dcg.Plan
	// PlanCache memoizes conversion plans per format pair.
	PlanCache = dcg.Cache
	// Repository stores schema documents for remote discovery.
	Repository = discovery.Repository
	// DiscoveryClient fetches schema documents from a repository.
	DiscoveryClient = discovery.Client
	// DiscoverySource is one way of finding metadata by name.
	DiscoverySource = discovery.Source
	// Resolver chains discovery sources with fallback.
	Resolver = discovery.Resolver
	// Broker is the event backbone.
	Broker = eventbus.Broker
	// Publisher publishes records onto backbone streams.
	Publisher = eventbus.Publisher
	// Subscriber receives records from backbone streams.
	Subscriber = eventbus.Subscriber
	// Event is one delivered record.
	Event = eventbus.Event
)

// Field kinds for FieldSpec declarations.
const (
	Int    = pbio.Int
	Uint   = pbio.Uint
	Float  = pbio.Float
	Char   = pbio.Char
	String = pbio.String
	Bool   = pbio.Bool
	Nested = pbio.Nested
)

// C element types for FieldSpec declarations.
const (
	CChar      = machine.CChar
	CUChar     = machine.CUChar
	CShort     = machine.CShort
	CUShort    = machine.CUShort
	CInt       = machine.CInt
	CUInt      = machine.CUInt
	CLong      = machine.CLong
	CULong     = machine.CULong
	CLongLong  = machine.CLongLong
	CULongLong = machine.CULongLong
	CFloat     = machine.CFloat
	CDouble    = machine.CDouble
)

// Predefined architectures. NativeArch is the profile used when encoding on
// this machine; the others simulate heterogeneous peers.
var (
	NativeArch  = machine.Native
	ArchX86     = machine.X86
	ArchX86_64  = machine.X86_64
	ArchSparc   = machine.Sparc
	ArchSparc64 = machine.Sparc64
)

// ArchByName resolves a predefined architecture name ("x86", "sparc", ...).
func ArchByName(name string) (*Arch, error) { return machine.ArchByName(name) }

// ArchNames lists the predefined architecture names.
func ArchNames() []string { return machine.ArchNames() }

// ParseSchema parses an XML Schema metadata document.
func ParseSchema(doc string) (*Schema, error) { return xmlschema.ParseString(doc) }

// The Register family: three ways to put a format into a Context, one per
// metadata source. RegisterIOFields takes the paper's explicit descriptors,
// RegisterSpecs computes layout for the context's architecture, and
// RegisterSchema (with its Document/File/URL variants) runs the xml2wire
// pipeline over an XML Schema. All of them return formats that encode,
// decode and convert identically.

// RegisterIOFields registers a format from paper-style explicit IOField
// descriptors — name, type string, size and offset exactly as they would
// appear in a PBIO field list. Use it when the layout is already known,
// e.g. when mirroring a C struct byte-for-byte.
func RegisterIOFields(ctx *Context, name string, fields []IOField) (*Format, error) {
	return ctx.Register(name, fields)
}

// RegisterSpecs registers a format from portable FieldSpec declarations;
// sizes, alignment and offsets are computed for the context's architecture,
// the way a compiler would lay out the equivalent struct.
func RegisterSpecs(ctx *Context, name string, specs []FieldSpec) (*Format, error) {
	return ctx.RegisterSpec(name, specs)
}

// RegisterSchema binds a parsed schema's types to the context architecture
// and registers them (the xml2wire pipeline).
func RegisterSchema(ctx *Context, s *Schema) (*FormatSet, error) {
	return core.RegisterSchema(ctx, s)
}

// RegisterSchemaDocument parses and registers schema text.
func RegisterSchemaDocument(ctx *Context, doc string) (*FormatSet, error) {
	return core.RegisterDocument(ctx, []byte(doc))
}

// RegisterSchemaFile loads and registers a schema from the file system.
func RegisterSchemaFile(ctx *Context, path string) (*FormatSet, error) {
	return core.RegisterFile(ctx, path)
}

// RegisterSchemaURL retrieves a schema document from an arbitrary URL and
// registers it — the paper's "a URL can be used instead" mode.
func RegisterSchemaURL(ctx context.Context, pctx *Context, url string) (*FormatSet, error) {
	s, err := discovery.FetchURL(ctx, nil, url)
	if err != nil {
		return nil, err
	}
	return core.RegisterSchema(pctx, s)
}

// MarshalFormatMeta serializes a format (and its nested dependencies) for
// transmission to peers.
func MarshalFormatMeta(f *Format) []byte { return pbio.MarshalMeta(f) }

// UnmarshalFormatMeta reconstructs a format received from a peer.
func UnmarshalFormatMeta(data []byte) (*Format, error) { return pbio.UnmarshalMeta(data) }

// NewWireWriter returns a record writer over a byte stream that transmits
// each format's metadata once.
func NewWireWriter(w interface{ Write([]byte) (int, error) }) *pbio.Writer {
	return pbio.NewWriter(w)
}

// NewWireReader returns a record reader that adopts incoming formats into
// ctx.
func NewWireReader(r interface{ Read([]byte) (int, error) }, ctx *Context) *pbio.Reader {
	return pbio.NewReader(r, ctx)
}

// CompilePlan builds a conversion program from src records to dst records.
func CompilePlan(src, dst *Format) (*ConversionPlan, error) { return dcg.Compile(src, dst) }

// NewRepository returns an empty metadata repository; serve it with
// (*Repository).Handler and net/http.
func NewRepository() *Repository { return discovery.NewRepository() }

// NewDiscoveryClient returns a caching client for a repository base URL.
// Options configure timeouts, retries and stale-serve degradation (see
// WithDiscoveryRetry and friends in options.go).
func NewDiscoveryClient(baseURL string, opts ...DiscoveryClientOption) (*DiscoveryClient, error) {
	return discovery.NewClient(baseURL, opts...)
}

// NewResolver chains discovery sources, primary first, with fallback — the
// remote-then-compiled-in pattern of the paper's fault-tolerance design.
func NewResolver(sources ...DiscoverySource) *Resolver {
	return discovery.NewResolver(sources...)
}

// StaticSchemas builds a compiled-in discovery source from name -> schema
// document text.
func StaticSchemas(docs map[string]string) DiscoverySource {
	return discovery.StaticSource(docs)
}

// DirSchemas builds a discovery source over a directory of <name>.xsd files.
func DirSchemas(dir string) DiscoverySource { return discovery.DirSource{Dir: dir} }

// DiscoverAndRegister resolves a format name through a discovery source and
// registers the schema's types.
func DiscoverAndRegister(ctx context.Context, src DiscoverySource, pctx *Context, name string) (*FormatSet, error) {
	s, err := src.Schema(ctx, name)
	if err != nil {
		return nil, err
	}
	return core.RegisterSchema(pctx, s)
}

// DialPublisher connects a publisher to a broker. Options configure dial
// timeouts and automatic reconnection (see WithBusReconnect in options.go).
func DialPublisher(addr string, opts ...BusClientOption) (*Publisher, error) {
	return eventbus.DialPublisher(addr, opts...)
}

// DialPublisherContext is DialPublisher under a context governing the
// initial dial.
func DialPublisherContext(ctx context.Context, addr string, opts ...BusClientOption) (*Publisher, error) {
	return eventbus.DialPublisherContext(ctx, addr, opts...)
}

// DialSubscriber connects a subscriber to a broker, adopting stream formats
// into ctx.
func DialSubscriber(addr string, ctx *Context, opts ...BusClientOption) (*Subscriber, error) {
	return eventbus.DialSubscriber(addr, ctx, opts...)
}

// DialSubscriberContext is DialSubscriber under a context governing the
// initial dial.
func DialSubscriberContext(dialCtx context.Context, addr string, ctx *Context, opts ...BusClientOption) (*Subscriber, error) {
	return eventbus.DialSubscriberContext(dialCtx, addr, ctx, opts...)
}

// EncodeXDR marshals a record in canonical XDR (RFC 1014) — the baseline
// wire format the paper compares against.
func EncodeXDR(f *Format, rec Record) ([]byte, error) { return xdr.EncodeRecord(f, rec) }

// DecodeXDR unmarshals a canonical XDR record.
func DecodeXDR(f *Format, data []byte) (Record, error) { return xdr.DecodeRecord(f, data) }

// EncodeXMLText marshals a record as an XML text message — the wire format
// of XML-RPC-era systems, provided as the measured baseline.
func EncodeXMLText(f *Format, rec Record) ([]byte, error) { return xmlwire.EncodeRecord(f, rec) }

// DecodeXMLText unmarshals an XML text message.
func DecodeXMLText(f *Format, data []byte) (Record, error) { return xmlwire.DecodeRecord(f, data) }

// ServeRepository serves a metadata repository over HTTP until the listener
// closes; a convenience for examples and tools.
func ServeRepository(ln net.Listener, repo *Repository) error {
	srv := &http.Server{Handler: repo.Handler()}
	return srv.Serve(ln)
}
