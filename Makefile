GO ?= go

.PHONY: build test check bench tables

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Pre-push gate: vet + full suite + race detector on the concurrent packages.
check:
	@sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtab
