package openmeta

// Tests for scripts/trajectory.sh: the append/validate keeper of the
// committed BENCH_trajectory.json perf history. Validation must reject
// malformed entries and timestamps that go backwards; append must turn an
// omload JSON report into a well-formed entry.

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openmeta/internal/loadgen"
)

func trajectorySh(t *testing.T, trajPath string, args ...string) (string, error) {
	t.Helper()
	if _, err := exec.LookPath("jq"); err != nil {
		t.Skip("jq not installed")
	}
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skip("sh not installed")
	}
	cmd := exec.Command("sh", append([]string{"scripts/trajectory.sh"}, args...)...)
	cmd.Env = append(cmd.Environ(), "TRAJECTORY="+trajPath)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestTrajectoryValidateCommitted(t *testing.T) {
	// The committed trajectory must always validate.
	out, err := trajectorySh(t, "BENCH_trajectory.json", "validate")
	if err != nil {
		t.Fatalf("committed BENCH_trajectory.json invalid: %v\n%s", err, out)
	}
}

func TestTrajectoryValidateRejects(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, content, wantMsg string
	}{
		{"not array", `{"timestamp": "x"}`, "malformed"},
		{"empty", `[]`, "malformed"},
		{"missing fields", `[{"timestamp": "2026-08-08T12:00:00Z"}]`, "malformed"},
		{"bad timestamp", `[{"timestamp": "yesterday", "commit": "a", "tool": "omload",
			"benches": [{"name": "x", "value": 1, "unit": "ns"}]}]`, "malformed"},
		{"bad bench", `[{"timestamp": "2026-08-08T12:00:00Z", "commit": "a", "tool": "omload",
			"benches": [{"name": "x"}]}]`, "malformed"},
		{"backwards timestamps", `[
			{"timestamp": "2026-08-08T12:00:00Z", "commit": "a", "tool": "omload",
			 "benches": [{"name": "x", "value": 1, "unit": "ns"}]},
			{"timestamp": "2026-08-07T12:00:00Z", "commit": "b", "tool": "omload",
			 "benches": [{"name": "x", "value": 1, "unit": "ns"}]}]`, "not non-decreasing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".json")
			if err := os.WriteFile(p, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			out, err := trajectorySh(t, p, "validate")
			if err == nil {
				t.Fatalf("invalid trajectory accepted:\n%s", out)
			}
			if !strings.Contains(out, tc.wantMsg) {
				t.Fatalf("output missing %q:\n%s", tc.wantMsg, out)
			}
		})
	}
}

func TestTrajectoryAppendFromRun(t *testing.T) {
	if _, err := exec.LookPath("jq"); err != nil {
		t.Skip("jq not installed")
	}
	// Produce a real (tiny) omload report and append it twice: both entries
	// must land, validate, and carry the report's p99.
	rep, err := loadgen.Run(context.Background(), loadgen.Spec{
		Duration: 150 * time.Millisecond, Rate: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	runPath := filepath.Join(dir, "run.json")
	if err := os.WriteFile(runPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	traj := filepath.Join(dir, "traj.json")
	for i := 0; i < 2; i++ {
		if out, err := trajectorySh(t, traj, "append", runPath); err != nil {
			t.Fatalf("append %d: %v\n%s", i, err, out)
		}
	}
	raw, err := os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		Tool    string `json:"tool"`
		Benches []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
			Unit  string  `json:"unit"`
		} `json:"benches"`
	}
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Tool != "omload" {
		t.Fatalf("unexpected trajectory: %s", raw)
	}
	found := false
	for _, b := range entries[1].Benches {
		if b.Name == "e2e_p99" && b.Unit == "ns" && int64(b.Value) == rep.Latency.P99 {
			found = true
		}
	}
	if !found {
		t.Fatalf("e2e_p99 %d not in appended entry: %s", rep.Latency.P99, raw)
	}
	// Appending a non-omload file must fail with a schema message.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"hello": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := trajectorySh(t, traj, "append", bad); err == nil {
		t.Fatalf("non-omload report accepted:\n%s", out)
	} else if !strings.Contains(out, "omload/v1") {
		t.Fatalf("missing schema message:\n%s", out)
	}
}
