package openmeta

// Fleet-telemetry acceptance test: a publisher, a broker and a subscriber,
// each with its own isolated registry, tracer and flight recorder served on
// its own debug listener — three separately-scraped endpoints, exactly like
// three processes started with -debug-addr — plus a collector scraping all
// of them. Every assertion is made from the outside, over the /fleet HTTP
// surface, the way an operator using omcollect would see it: one TraceID's
// spans, recorded in three different rings, come back as a single
// parent-linked tree whose stage shares sum to 100%.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmeta/internal/airline"
	"openmeta/internal/core"
	"openmeta/internal/eventbus"
	"openmeta/internal/flight"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/testutil"
	"openmeta/internal/trace"
)

// fleetProc is one simulated fleet process: isolated observability stack on
// a real debug listener.
type fleetProc struct {
	reg *obsv.Registry
	trc *trace.Tracer
	rec *flight.Recorder
	srv *httptest.Server
}

func newFleetProc(t *testing.T) *fleetProc {
	t.Helper()
	p := &fleetProc{reg: obsv.New(), trc: trace.NewTracer(0), rec: flight.New(256)}
	p.trc.SetSampling(1)
	p.srv = httptest.NewServer(obsv.DebugMuxFor(p.reg, obsv.NewHealth(), p.rec,
		obsv.DebugEndpoint{Path: "/debug/trace", Handler: trace.Handler(p.trc), Desc: "trace"}))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *fleetProc) addr() string { return strings.TrimPrefix(p.srv.URL, "http://") }

func TestFleetTraceAssemblyEndToEnd(t *testing.T) {
	pubProc, brkProc, subProc := newFleetProc(t), newFleetProc(t), newFleetProc(t)

	// The backbone: broker owns brkProc's stack, the clients own theirs. The
	// trace context travels on the wire (the traced protocol extension), so
	// the three rings record fragments of the same TraceID.
	broker, err := eventbus.Listen("127.0.0.1:0",
		eventbus.WithTracer(brkProc.trc),
		eventbus.WithObserver(brkProc.reg),
		eventbus.WithFlightRecorder(brkProc.rec))
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	subCtx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eventbus.DialSubscriber(broker.Addr().String(), subCtx,
		eventbus.WithClientTracer(subProc.trc),
		eventbus.WithClientFlightRecorder(subProc.rec))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(airline.FlightStream); err != nil {
		t.Fatal(err)
	}

	pub, err := eventbus.DialPublisher(broker.Addr().String(),
		eventbus.WithClientTracer(pubProc.trc),
		eventbus.WithClientFlightRecorder(pubProc.rec))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	pubCtx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.RegisterDocument(pubCtx, []byte(airline.FlightSchema))
	if err != nil {
		t.Fatal(err)
	}
	format, ok := set.Lookup("ASDOffEvent")
	if !ok {
		t.Fatal("flight schema missing ASDOffEvent")
	}
	gen := airline.NewFlightGen(1)
	const records = 5
	for i := 0; i < records; i++ {
		if err := pub.PublishRecord(airline.FlightStream, format, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < records; i++ {
		ev, err := sub.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Decode(); err != nil { // decode records the pbio.decode span
			t.Fatal(err)
		}
	}

	// The collector scrapes the three debug listeners like omcollect would.
	coll := NewFleetCollector(WithFleetTargets(
		FleetTarget{Name: "pub", Component: "ompub", Addr: pubProc.addr()},
		FleetTarget{Name: "broker", Component: "eventbusd", Addr: brkProc.addr()},
		FleetTarget{Name: "sub", Component: "omsub", Addr: subProc.addr()},
	))
	fleetSrv := httptest.NewServer(FleetHandler(coll))
	defer fleetSrv.Close()

	// Spans finish asynchronously with delivery; scrape until some trace has
	// fragments from all three instances.
	var traceID string
	testutil.WaitFor(t, 5*time.Second, "a trace spanning all three instances", func() bool {
		if coll.ScrapeOnce(context.Background()) != 3 {
			return false
		}
		var idx struct {
			Traces []struct {
				Trace     string   `json:"trace"`
				Spans     int      `json:"spans"`
				Instances []string `json:"instances"`
			} `json:"traces"`
		}
		if err := getJSON(fleetSrv.URL+"/fleet/trace", &idx); err != nil {
			return false
		}
		for _, tr := range idx.Traces {
			if len(tr.Instances) == 3 && tr.Spans >= 4 {
				traceID = tr.Trace
				return true
			}
		}
		return false
	})

	// The headline: /fleet/trace/<id> alone proves the cross-process story.
	type spanView struct {
		Span     string     `json:"span"`
		Parent   string     `json:"parent"`
		Name     string     `json:"name"`
		Instance string     `json:"instance"`
		Orphan   bool       `json:"orphan"`
		Children []spanView `json:"children"`
	}
	var tv struct {
		Trace     string   `json:"trace"`
		Spans     int      `json:"spans"`
		Orphans   int      `json:"orphans"`
		Instances []string `json:"instances"`
		Reference string   `json:"reference"`
		Skew      []struct {
			Instance string `json:"instance"`
			Edges    int    `json:"edges"`
		} `json:"skew"`
		Stages []struct {
			Name     string  `json:"name"`
			SharePct float64 `json:"share_pct"`
		} `json:"stages"`
		Roots []spanView `json:"roots"`
	}
	if err := getJSON(fleetSrv.URL+"/fleet/trace/"+traceID, &tv); err != nil {
		t.Fatal(err)
	}

	if len(tv.Instances) != 3 || tv.Orphans != 0 {
		t.Fatalf("assembly covers instances %v with %d orphans, want 3 instances 0 orphans", tv.Instances, tv.Orphans)
	}
	if len(tv.Roots) != 1 {
		t.Fatalf("assembly has %d roots, want 1 — fragments did not stitch", len(tv.Roots))
	}
	root := tv.Roots[0]
	if root.Name != "pub.publish" || root.Instance != "pub" {
		t.Fatalf("root span = %s on %s, want pub.publish on pub", root.Name, root.Instance)
	}
	if tv.Reference != "pub" {
		t.Errorf("skew reference = %q, want pub", tv.Reference)
	}

	// Every span must be reachable from the single root with its parent link
	// intact, and the three stages must sit on their own instances.
	instOf := map[string]string{}
	linked := 0
	var walk func(sv spanView, parent string)
	walk = func(sv spanView, parent string) {
		linked++
		if parent != "" && sv.Parent != parent {
			t.Errorf("span %s parent = %s, want %s", sv.Name, sv.Parent, parent)
		}
		if prev, seen := instOf[sv.Name]; seen && prev != sv.Instance {
			t.Errorf("stage %s on two instances: %s and %s", sv.Name, prev, sv.Instance)
		}
		instOf[sv.Name] = sv.Instance
		for _, ch := range sv.Children {
			walk(ch, sv.Span)
		}
	}
	walk(root, "")
	if linked != tv.Spans {
		t.Errorf("tree links %d of %d spans", linked, tv.Spans)
	}
	for stage, wantInst := range map[string]string{
		"pub.publish": "pub", "pbio.encode": "pub",
		"broker.route": "broker", "pbio.decode": "sub",
	} {
		if got := instOf[stage]; got != wantInst {
			t.Errorf("stage %s attributed to %q, want %q", stage, got, wantInst)
		}
	}

	// Stage shares sum to 100% (the paper's per-stage cost decomposition,
	// reassembled across processes).
	var sum float64
	for _, st := range tv.Stages {
		sum += st.SharePct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("stage shares sum to %.2f%%, want 100%%", sum)
	}
	// Cross-instance skew was actually estimated, not defaulted: the broker
	// and subscriber hang off at least one parent/child edge each.
	for _, sk := range tv.Skew {
		if sk.Instance != "pub" && sk.Edges == 0 {
			t.Errorf("skew for %s has no anchoring edges", sk.Instance)
		}
	}

	// The merged stats surface sees all three instances too.
	var stats map[string]int64
	if err := getJSON(fleetSrv.URL+"/fleet/stats", &stats); err != nil {
		t.Fatal(err)
	}
	for _, inst := range []string{"pub", "broker", "sub"} {
		if stats[`fleet.instance.up{instance="`+inst+`"}`] != 1 {
			t.Errorf("fleet.instance.up missing or 0 for %s", inst)
		}
	}
	if stats[`eventbus.delivered{instance="broker"}`] == 0 {
		t.Errorf("broker delivery counter not merged; have %d fleet keys", len(stats))
	}
}

func getJSON(url string, out interface{}) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
