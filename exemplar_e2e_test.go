package openmeta

// Trace-exemplar acceptance test: the headline of the exemplar work, proven
// from HTTP alone. A traced pub→broker→sub workload runs over the real
// backbone with per-process registries and tracers; the latency histograms it
// leaves behind carry bucket exemplars (TraceIDs); and the collector resolves
// one of those exemplars — via /fleet/exemplar/<metric> — into the same
// parent-linked cross-process tree /fleet/trace/<id> serves, with stage
// shares summing to 100%. In short: every latency number on the dashboard is
// one GET away from the actual slow request that produced it.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmeta/internal/airline"
	"openmeta/internal/core"
	"openmeta/internal/eventbus"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/testutil"
)

func TestFleetExemplarEndToEnd(t *testing.T) {
	pubProc, brkProc, subProc := newFleetProc(t), newFleetProc(t), newFleetProc(t)

	broker, err := eventbus.Listen("127.0.0.1:0",
		eventbus.WithTracer(brkProc.trc),
		eventbus.WithObserver(brkProc.reg),
		eventbus.WithFlightRecorder(brkProc.rec))
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	// The subscriber's pbio context reports into its process registry, so
	// pbio.decode_ns exemplars land where the collector scrapes them.
	subCtx, err := pbio.NewContext(machine.Native, pbio.WithObserver(subProc.reg))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eventbus.DialSubscriber(broker.Addr().String(), subCtx,
		eventbus.WithClientTracer(subProc.trc))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(airline.FlightStream); err != nil {
		t.Fatal(err)
	}

	pub, err := eventbus.DialPublisher(broker.Addr().String(),
		eventbus.WithClientTracer(pubProc.trc))
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	pubCtx, err := pbio.NewContext(machine.Native, pbio.WithObserver(pubProc.reg))
	if err != nil {
		t.Fatal(err)
	}
	set, err := core.RegisterDocument(pubCtx, []byte(airline.FlightSchema))
	if err != nil {
		t.Fatal(err)
	}
	format, ok := set.Lookup("ASDOffEvent")
	if !ok {
		t.Fatal("flight schema missing ASDOffEvent")
	}
	gen := airline.NewFlightGen(1)
	const records = 8
	for i := 0; i < records; i++ {
		if err := pub.PublishRecord(airline.FlightStream, format, gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < records; i++ {
		ev, err := sub.Next()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Decode(); err != nil {
			t.Fatal(err)
		}
	}

	coll := NewFleetCollector(WithFleetTargets(
		FleetTarget{Name: "pub", Component: "ompub", Addr: pubProc.addr()},
		FleetTarget{Name: "broker", Component: "eventbusd", Addr: brkProc.addr()},
		FleetTarget{Name: "sub", Component: "omsub", Addr: subProc.addr()},
	))
	fleetSrv := httptest.NewServer(FleetHandler(coll))
	defer fleetSrv.Close()

	// Scrape until the broker's routing exemplar is visible fleet-wide AND
	// its trace has been assembled from all scraped rings (span finish and
	// delivery race, so retry the scrape like an interval-driven collector).
	metric := "eventbus.route_ns"
	var rich obsv.StatsWithExemplars
	testutil.WaitFor(t, 5*time.Second, "a fleet-visible routing exemplar", func() bool {
		if coll.ScrapeOnce(context.Background()) != 3 {
			return false
		}
		if err := getJSON(fleetSrv.URL+"/fleet/stats?exemplars=1", &rich); err != nil {
			return false
		}
		return len(rich.Exemplars[metric+`{instance="broker"}`]) > 0
	})

	// The merged shape is consistent: the exemplar-bearing key also has its
	// histogram family in the metrics map, and the TraceID is well-formed.
	exs := rich.Exemplars[metric+`{instance="broker"}`]
	worst := exs[len(exs)-1]
	if len(worst.TraceID) != 32 || worst.TraceID == strings.Repeat("0", 32) {
		t.Fatalf("exemplar TraceID = %q", worst.TraceID)
	}
	if rich.Metrics[metric+`{instance="broker"}.count`] < records {
		t.Fatalf("exemplar key lacks its histogram family: count=%d",
			rich.Metrics[metric+`{instance="broker"}.count`])
	}
	// The subscriber's decode histogram carries exemplars too — both ends of
	// the journey are linked, not just the broker hop.
	if len(rich.Exemplars[`pbio.decode_ns{instance="sub"}`]) == 0 {
		t.Errorf("no pbio.decode_ns exemplars from the subscriber; keys: %d", len(rich.Exemplars))
	}

	// The same TraceIDs are also on the OpenMetrics wire: the broker's
	// /metrics with content negotiation emits exemplar-suffixed bucket lines.
	req, _ := http.NewRequest("GET", brkProc.srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	om := string(body)
	if !strings.Contains(om, `_bucket{le=`) || !strings.Contains(om, `# {trace_id="`+worst.TraceID+`"}`) {
		t.Fatalf("OpenMetrics exposition missing the exemplar for trace %s", worst.TraceID)
	}

	// The headline: one GET resolves the metric's worst exemplar into a
	// parent-linked cross-process tree.
	var ev struct {
		Metric   string        `json:"metric"`
		Instance string        `json:"instance"`
		Exemplar obsv.Exemplar `json:"exemplar"`
		Trace    struct {
			Trace     string   `json:"trace"`
			Spans     int      `json:"spans"`
			Orphans   int      `json:"orphans"`
			Instances []string `json:"instances"`
			Stages    []struct {
				Name     string  `json:"name"`
				SharePct float64 `json:"share_pct"`
			} `json:"stages"`
			Roots []struct {
				Name     string `json:"name"`
				Instance string `json:"instance"`
			} `json:"roots"`
		} `json:"trace"`
	}
	if err := getJSON(fleetSrv.URL+"/fleet/exemplar/"+metric, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Metric != metric || ev.Instance != "broker" {
		t.Fatalf("resolved %q on %q, want %q on broker", ev.Metric, ev.Instance, metric)
	}
	if ev.Exemplar.TraceID != ev.Trace.Trace {
		t.Fatalf("exemplar trace %s but assembly is for %s", ev.Exemplar.TraceID, ev.Trace.Trace)
	}
	if len(ev.Trace.Instances) < 2 {
		t.Fatalf("assembled exemplar trace spans instances %v, want >= 2", ev.Trace.Instances)
	}
	if ev.Trace.Orphans != 0 || len(ev.Trace.Roots) != 1 {
		t.Fatalf("assembly: %d orphans, %d roots, want 0 and 1", ev.Trace.Orphans, len(ev.Trace.Roots))
	}
	if ev.Trace.Roots[0].Name != "pub.publish" || ev.Trace.Roots[0].Instance != "pub" {
		t.Fatalf("root = %s on %s, want pub.publish on pub",
			ev.Trace.Roots[0].Name, ev.Trace.Roots[0].Instance)
	}
	var sum float64
	for _, st := range ev.Trace.Stages {
		sum += st.SharePct
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("stage shares sum to %.2f%%, want 100%%", sum)
	}
}
