package openmeta

import (
	"context"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"openmeta/internal/eventbus"
	"openmeta/internal/flight"
	"openmeta/internal/histdb"
	"openmeta/internal/loadgen"
	"openmeta/internal/machine"
	"openmeta/internal/obsv"
	"openmeta/internal/pbio"
	"openmeta/internal/telemetry"
)

// TestContentionEndToEnd is the acceptance scenario for the contention
// observability stack: a subscriber stalled behind a faultnet-throttled link
// while several publishers push bulk records. Every assertion is made over
// HTTP, the way an operator would diagnose the incident:
//
//	(a) /debug/contention shows the tracked broker routing lock with real
//	    wait/hold acquisitions and decodes with non-null profile site arrays
//	(b) /stats shows a queue-wait excursion (frames aged in the stalled
//	    subscriber's queue before hitting the wire)
//	(c) /debug/history carries the queue-wait and lock-wait histogram series
//	    so alert rules can watch their p99s
//	(d) /fleet/contention (omcollect's aggregation) republishes the same
//	    lock snapshot under the instance name
//
// Part B runs omload in-process and requires the new "queue" stage in the
// stage-share breakdown, with shares summing to 100%.
func TestContentionEndToEnd(t *testing.T) {
	obsv.SetContentionProfiling(1)
	defer obsv.SetContentionProfiling(0)

	reg := obsv.New()
	health := obsv.NewHealth()
	rec := flight.New(256)
	db := histdb.New(reg, histdb.WithInterval(20*time.Millisecond), histdb.WithCapacity(512))
	db.Start()
	defer db.Stop()

	srv := httptest.NewServer(obsv.DebugMuxFor(reg, health, rec,
		obsv.DebugEndpoint{Path: "/debug/history", Handler: histdb.Handler(db), Desc: "history"}))
	defer srv.Close()

	// The broker under observation: small queue so frames age visibly, a long
	// write deadline so the stall persists for the measurement window.
	broker, err := eventbus.Listen("127.0.0.1:0",
		eventbus.WithObserver(reg),
		eventbus.WithQueueDepth(32),
		eventbus.WithWriteDeadline(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	// The slow subscriber sits behind injected faultnet latency and never
	// drains, so its broker-side queue backs up and every dequeued frame has
	// aged in the queue.
	proxyAddr, closeProxy := stallingProxy(t, broker.Addr().String())
	defer closeProxy()
	subCtx, err := pbio.NewContext(machine.Native)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eventbus.DialSubscriber(proxyAddr, subCtx)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe("bulk"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "subscriber registration", func() bool {
		return broker.SubscriberCount("bulk") == 1
	})

	// Three concurrent publishers contend on the tracked routing lock.
	const publishers = 3
	stopPub := make(chan struct{})
	var pubWG sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pubCtx, err := pbio.NewContext(machine.Native)
		if err != nil {
			t.Fatal(err)
		}
		bulk, err := pubCtx.RegisterSpec("Bulk", []pbio.FieldSpec{
			{Name: "seq", Kind: pbio.Int, CType: machine.CInt},
			{Name: "payload", Kind: pbio.Uint, CType: machine.CULong, Dynamic: true, CountField: "n"},
			{Name: "n", Kind: pbio.Int, CType: machine.CInt},
		})
		if err != nil {
			t.Fatal(err)
		}
		pub, err := eventbus.DialPublisher(broker.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			defer pub.Close()
			payload := make([]uint64, 4096)
			for i := 0; ; i++ {
				select {
				case <-stopPub:
					return
				default:
				}
				if err := pub.PublishRecord("bulk", bulk, pbio.Record{"seq": i, "payload": payload}); err != nil {
					return
				}
			}
		}()
	}

	// (b) frames dequeued for the stalled subscriber aged in its queue.
	waitFor(t, 15*time.Second, "queue-wait excursion in /stats", func() bool {
		var snap map[string]int64
		httpJSON(t, srv.URL+"/stats", &snap)
		return snap["eventbus.queue_wait_ns.max"] > (10 * time.Millisecond).Nanoseconds()
	})

	// (a) the contention endpoint shows the tracked routing lock working.
	var cont obsv.ContentionSnapshot
	waitFor(t, 15*time.Second, "broker_mu acquisitions in /debug/contention", func() bool {
		httpJSON(t, srv.URL+"/debug/contention", &cont)
		for _, l := range cont.Locks {
			if l.Name == "eventbus.broker_mu" && l.Wait.Count > 0 && l.Hold.Count > 0 {
				return true
			}
		}
		return false
	})
	if cont.MutexProfileFraction != 1 {
		t.Fatalf("mutex_profile_fraction = %d, want 1 (profiling was enabled)", cont.MutexProfileFraction)
	}
	if cont.Mutex == nil || cont.Block == nil {
		t.Fatalf("profile site arrays must be non-null: %+v", cont)
	}
	for _, l := range cont.Locks {
		if l.Wait.P50NS > l.Wait.P99NS || l.Wait.P99NS > l.Wait.MaxNS {
			t.Fatalf("lock %s wait quantiles not monotone: %+v", l.Name, l.Wait)
		}
	}

	// Let histdb take a few more samples with the excursion live, then end it.
	time.Sleep(100 * time.Millisecond)
	close(stopPub)
	pubWG.Wait()
	closeProxy()
	_ = sub.Close()

	// (c) the history ring carries both new histogram families: the queue-wait
	// excursion and the tracked lock-wait series alert rules watch.
	var hist struct {
		Series map[string]struct {
			Points []struct {
				T int64 `json:"t"`
				V int64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	httpJSON(t, srv.URL+"/debug/history", &hist)
	qw, ok := hist.Series["eventbus.queue_wait_ns.p99"]
	if !ok {
		t.Fatalf("history lacks eventbus.queue_wait_ns.p99; have %d series", len(hist.Series))
	}
	var peak int64
	for _, p := range qw.Points {
		if p.V > peak {
			peak = p.V
		}
	}
	if peak <= (10 * time.Millisecond).Nanoseconds() {
		t.Fatalf("history queue-wait p99 peak = %dns, want > 10ms", peak)
	}
	if _, ok := hist.Series["eventbus.broker_mu.wait_ns.p99"]; !ok {
		t.Fatalf("history lacks eventbus.broker_mu.wait_ns.p99 (the series the default alert rule watches)")
	}

	// (d) the fleet layer: scrape the instance once, then read the same lock
	// back through /fleet/contention.
	col := telemetry.New(
		telemetry.WithTargets(telemetry.Target{Name: "broker", Addr: srv.URL}),
		telemetry.WithHTTPClient(srv.Client()))
	if n := col.ScrapeOnce(context.Background()); n != 1 {
		t.Fatalf("ScrapeOnce reached %d targets, want 1", n)
	}
	fleetSrv := httptest.NewServer(telemetry.Handler(col))
	defer fleetSrv.Close()
	var fleet struct {
		Instances map[string]obsv.ContentionSnapshot `json:"instances"`
	}
	httpJSON(t, fleetSrv.URL+"/fleet/contention", &fleet)
	inst, ok := fleet.Instances["broker"]
	if !ok {
		t.Fatalf("/fleet/contention lacks instance broker: %+v", fleet.Instances)
	}
	var fleetHasLock bool
	for _, l := range inst.Locks {
		if l.Name == "eventbus.broker_mu" && l.Wait.Count > 0 {
			fleetHasLock = true
		}
	}
	if !fleetHasLock {
		t.Fatalf("/fleet/contention broker instance lacks eventbus.broker_mu: %+v", inst.Locks)
	}

	// Part B: an omload run's stage-share breakdown now includes the queue
	// stage, and the shares still account for the whole traced self time.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Spec{
		Publishers:  2,
		Subscribers: 1,
		Rate:        4000,
		Duration:    400 * time.Millisecond,
		SampleEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) == 0 {
		t.Fatal("omload report has no stage shares (tracing on by default)")
	}
	var sum float64
	var hasQueue bool
	for _, st := range rep.Stages {
		sum += st.SharePct
		if st.Name == "queue" {
			hasQueue = true
			if st.Total <= 0 {
				t.Fatalf("queue stage has non-positive self time: %+v", st)
			}
		}
	}
	if !hasQueue {
		t.Fatalf("stage shares lack the queue stage: %+v", rep.Stages)
	}
	if math.Abs(sum-100) > 0.5 {
		t.Fatalf("stage shares sum to %.2f%%, want 100%%: %+v", sum, rep.Stages)
	}
}
